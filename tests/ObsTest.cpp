//===- tests/ObsTest.cpp - Observability layer ------------------------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability tests: the sharded metrics registry loses no increments
/// under heavy concurrency, histogram buckets follow Prometheus `le`
/// semantics exactly, the tracer renders well-formed and well-nested
/// Chrome-trace JSON with deterministic span ids, and every counted
/// quantity is bit-identical across 1 / 2 / 8 worker threads and with
/// observability on or off.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "obs/Log.h"
#include "scenarios/Scenarios.h"
#include "translate/Translator.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

#include <regex>
#include <thread>
#include <vector>

using namespace bayonet;

namespace {

LoadedNetwork load(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  return std::move(*Net);
}

/// Pulls every "key":<number> with the given key out of a JSON string, in
/// document order. Enough of a parser for the flat event objects the
/// tracer emits.
std::vector<uint64_t> jsonNumbers(const std::string &Json,
                                  const std::string &Key) {
  std::vector<uint64_t> Out;
  std::regex Re("\"" + Key + "\":([0-9]+)");
  for (auto It = std::sregex_iterator(Json.begin(), Json.end(), Re);
       It != std::sregex_iterator(); ++It)
    Out.push_back(std::stoull((*It)[1].str()));
  return Out;
}

/// Blanks the only nondeterministic fields (ts / dur, microseconds) so two
/// traces of the same run can be compared byte-for-byte.
std::string stripTimestamps(std::string Json) {
  Json = std::regex_replace(Json, std::regex("\"ts\":[0-9]+"), "\"ts\":T");
  return std::regex_replace(Json, std::regex("\"dur\":[0-9]+"), "\"dur\":D");
}

size_t countSubstr(const std::string &Hay, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

// The headline concurrency guarantee: 8 threads hammering one counter with
// a million increments each lose nothing — the aggregated total is exact,
// not approximate.
TEST(Obs, ConcurrentCounterStressExactTotal) {
  MetricsRegistry Reg;
  MetricId C = Reg.counter("stress_total", "concurrency stress counter");
  MetricId H = Reg.histogram("stress_hist", "concurrency stress histogram",
                             {10, 100, 1000});
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 1000000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Reg, C, H, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        Reg.add(C);
      // A sprinkle of histogram traffic rides along on each thread.
      for (uint64_t I = 0; I < 1000; ++I)
        Reg.observe(H, static_cast<double>(T * 137 % 2000));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Reg.value(C), NumThreads * PerThread);
  EXPECT_EQ(Reg.value(H), NumThreads * 1000u);
}

TEST(Obs, HistogramBucketBoundaries) {
  MetricsRegistry Reg;
  MetricId H = Reg.histogram("h", "boundary semantics", {1, 2, 4});
  // Prometheus `le` semantics: a value equal to a bound lands IN that
  // bucket; anything above the last bound lands in +Inf.
  Reg.observe(H, 0.5);
  Reg.observe(H, 1.0);
  Reg.observe(H, 1.5);
  Reg.observe(H, 4.0);
  Reg.observe(H, 5.0);
  auto Snap = Reg.snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  const MetricValue &V = Snap[0];
  ASSERT_EQ(V.BucketCounts.size(), 4u); // 3 finite + the +Inf bucket.
  EXPECT_EQ(V.BucketCounts[0], 2u);     // le=1: 0.5, 1.0
  EXPECT_EQ(V.BucketCounts[1], 3u);     // le=2: + 1.5
  EXPECT_EQ(V.BucketCounts[2], 4u);     // le=4: + 4.0 (== bound)
  EXPECT_EQ(V.BucketCounts[3], 5u);     // +Inf: + 5.0
  EXPECT_EQ(V.Value, 5u);
  EXPECT_NEAR(V.Sum, 12.0, 1e-9);
}

TEST(Obs, GaugeSetAndMax) {
  MetricsRegistry Reg;
  MetricId G = Reg.gauge("g", "gauge");
  Reg.set(G, 7);
  EXPECT_EQ(Reg.value(G), 7u);
  Reg.max(G, 3); // Lower: no effect.
  EXPECT_EQ(Reg.value(G), 7u);
  Reg.max(G, 11);
  EXPECT_EQ(Reg.value(G), 11u);
}

TEST(Obs, RegistryDedupesAndChecksKinds) {
  MetricsRegistry Reg;
  MetricId A = Reg.counter("same", "help");
  MetricId B = Reg.counter("same", "help");
  EXPECT_EQ(A.Slot, B.Slot);
  EXPECT_THROW(Reg.gauge("same", "help"), std::runtime_error);
  EXPECT_THROW(Reg.histogram("bad", "help", {2, 2}), std::runtime_error);
}

TEST(Obs, RenderPromFormat) {
  MetricsRegistry Reg;
  MetricId C = Reg.counter("bayo_test_total", "a counter");
  MetricId H = Reg.histogram("bayo_lat", "a histogram", {1, 2, 4});
  Reg.add(C, 42);
  Reg.observe(H, 1.0);
  Reg.observe(H, 9.0);
  std::string Prom = Reg.renderProm();
  EXPECT_NE(Prom.find("# HELP bayo_test_total a counter\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("# TYPE bayo_test_total counter\n"), std::string::npos);
  EXPECT_NE(Prom.find("bayo_test_total 42\n"), std::string::npos);
  EXPECT_NE(Prom.find("# TYPE bayo_lat histogram\n"), std::string::npos);
  EXPECT_NE(Prom.find("bayo_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(Prom.find("bayo_lat_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("bayo_lat_sum 10\n"), std::string::npos);
  EXPECT_NE(Prom.find("bayo_lat_count 2\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(Obs, TraceJsonSchemaAndNesting) {
  Tracer T;
  {
    Span Outer = T.span("outer");
    Outer.arg("k", std::string("v\"q"));
    {
      Span Inner = T.span("inner");
      T.event("tick", {{"n", "1"}});
    }
  }
  std::string Json = T.renderChromeJson();
  // Shape: one trace-events array, spans as "X" with dur, instants as "i".
  EXPECT_NE(Json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\\\"q"), std::string::npos); // Escaped quote in arg.
  // Nesting via span_id/parent_id (timestamp-free): outer is 1 under root
  // 0, inner is 2 under 1, the instant event reports parent 2.
  EXPECT_EQ(jsonNumbers(Json, "span_id"), (std::vector<uint64_t>{1, 2, 0}));
  EXPECT_EQ(jsonNumbers(Json, "parent_id"),
            (std::vector<uint64_t>{0, 1, 2}));
}

// The Chrome Trace Event dialect: metadata records first, a cat field on
// every event, monotone nondecreasing timestamps — and switching dialects
// never changes the Bayonet render.
TEST(Obs, ChromeTraceFormatSchema) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto Ctx = std::make_shared<ObsContext>(true, false);
  InferenceOptions Opts;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  ASSERT_TRUE(R.Status.ok());

  std::string Chrome = Ctx->tracer()->renderJson(TraceFormat::Chrome);
  EXPECT_NE(Chrome.find("\"name\":\"process_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(Chrome.find("\"name\":\"thread_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(Chrome.find("\"name\":\"bayonet\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"name\":\"orchestrator\""), std::string::npos);
  // Every real event carries a category derived from its name prefix.
  EXPECT_EQ(countSubstr(Chrome, "\"cat\":\"exact\""),
            countSubstr(Chrome, "\"name\":\"exact."));
  EXPECT_GT(countSubstr(Chrome, "\"cat\":\""), 0u);
  // Events are stored (and rendered) in begin order, so ts never goes
  // backwards; dur is only ever on complete events.
  std::vector<uint64_t> Ts = jsonNumbers(Chrome, "ts");
  ASSERT_FALSE(Ts.empty());
  for (size_t I = 1; I < Ts.size(); ++I)
    EXPECT_LE(Ts[I - 1], Ts[I]);
  EXPECT_EQ(countSubstr(Chrome, "\"dur\":"),
            countSubstr(Chrome, "\"ph\":\"X\""));
  // Both dialects agree on span structure...
  std::string Bayo = Ctx->tracer()->renderJson(TraceFormat::Bayonet);
  EXPECT_EQ(jsonNumbers(Chrome, "span_id"), jsonNumbers(Bayo, "span_id"));
  EXPECT_EQ(jsonNumbers(Chrome, "parent_id"),
            jsonNumbers(Bayo, "parent_id"));
  // ...and the Bayonet spelling is exactly the legacy render.
  EXPECT_EQ(Bayo, Ctx->tracer()->renderChromeJson());
  EXPECT_EQ(Bayo.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_EQ(Bayo.find("\"cat\":"), std::string::npos);
}

// The /trace ring: the last N *completed* spans, oldest first.
TEST(Obs, RecentRingReturnsLastCompletedSpans) {
  Tracer T;
  { Span A = T.span("first"); }
  { Span B = T.span("second"); }
  { Span C = T.span("third"); }
  Span Open = T.span("still-open");
  std::string Recent = T.renderRecentJson(2);
  EXPECT_EQ(Recent.find("\"name\":\"first\""), std::string::npos);
  EXPECT_EQ(Recent.find("\"name\":\"still-open\""), std::string::npos)
      << "open spans are not in the completion ring";
  size_t SecondAt = Recent.find("\"name\":\"second\"");
  size_t ThirdAt = Recent.find("\"name\":\"third\"");
  ASSERT_NE(SecondAt, std::string::npos);
  ASSERT_NE(ThirdAt, std::string::npos);
  EXPECT_LT(SecondAt, ThirdAt) << "oldest of the last N renders first";
  Open.end();
  std::string All = T.renderRecentJson(100);
  EXPECT_NE(All.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(All.find("\"name\":\"still-open\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// End-to-end determinism
//===----------------------------------------------------------------------===//

namespace {

/// Runs the exact engine under a fresh metrics-only context and returns
/// (context, result). ParallelThreshold 1 forces the sharded path so the
/// thread count actually matters.
std::pair<std::shared_ptr<ObsContext>, ExactResult>
exactWithObs(const LoadedNetwork &Net, unsigned Threads) {
  auto Ctx = std::make_shared<ObsContext>(false, true);
  ExactOptions Opts;
  Opts.Threads = Threads;
  Opts.ParallelThreshold = 1;
  Opts.Obs = Ctx;
  return {Ctx, ExactEngine(Net.Spec, Opts).run()};
}

/// Every deterministic engine metric (everything except the duration
/// histogram, whose bucket placement is wall-clock dependent).
std::string metricFingerprint(const ObsContext &Ctx) {
  std::string Out;
  for (const MetricValue &V : Ctx.metrics()->snapshot()) {
    if (V.Name == "bayonet_step_duration_ms" ||
        V.Name == "bayonet_pool_batches_total" ||
        V.Name == "bayonet_pool_tasks_total")
      continue; // Duration- or thread-count-dependent by design.
    Out += V.Name + "=" + std::to_string(V.Value);
    for (uint64_t B : V.BucketCounts)
      Out += "," + std::to_string(B);
    Out += ";";
  }
  return Out;
}

} // namespace

TEST(Obs, ExactCountersIdenticalAcrossThreadCounts) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto [Ctx1, R1] = exactWithObs(Net, 1);
  auto [Ctx2, R2] = exactWithObs(Net, 2);
  auto [Ctx8, R8] = exactWithObs(Net, 8);
  ASSERT_TRUE(R1.Status.ok());
  ASSERT_TRUE(R2.Status.ok());
  ASSERT_TRUE(R8.Status.ok());
  EXPECT_GT(Ctx1->metrics()->value(Ctx1->ids().StatesExpanded), 0u);
  std::string F1 = metricFingerprint(*Ctx1);
  EXPECT_EQ(F1, metricFingerprint(*Ctx2));
  EXPECT_EQ(F1, metricFingerprint(*Ctx8));
  // The registry view agrees with the engine's own result statistics.
  EXPECT_EQ(Ctx1->metrics()->value(Ctx1->ids().StatesExpanded),
            R1.ConfigsExpanded);
  EXPECT_EQ(Ctx1->metrics()->value(Ctx1->ids().MergeHits), R1.MergeHits);
  EXPECT_EQ(Ctx1->metrics()->value(Ctx1->ids().MergeAttempts),
            R1.MergeAttempts);
  EXPECT_GE(R1.MergeAttempts, R1.MergeHits);
  EXPECT_EQ(Ctx1->metrics()->value(Ctx1->ids().PeakFrontier),
            R1.MaxFrontierSize);
}

TEST(Obs, AnswersIdenticalWithObsOnAndOff) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  ExactResult Plain = ExactEngine(Net.Spec).run();
  auto [Ctx, Observed] = exactWithObs(Net, 2);
  ASSERT_TRUE(Plain.Status.ok());
  ASSERT_TRUE(Observed.Status.ok());
  EXPECT_TRUE(Plain.QueryMass == Observed.QueryMass);
  EXPECT_EQ(Plain.ConfigsExpanded, Observed.ConfigsExpanded);
  EXPECT_EQ(Plain.MergeHits, Observed.MergeHits);
}

TEST(Obs, SamplerCountersIdenticalAcrossThreadCounts) {
  LoadedNetwork Net = load(scenarios::reliabilityChain(1));
  auto run = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, true);
    SampleOptions Opts;
    Opts.Particles = 512;
    Opts.Seed = 7;
    Opts.Threads = Threads;
    Opts.Obs = Ctx;
    SampleResult R = Sampler(Net.Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return Ctx;
  };
  auto C1 = run(1), C2 = run(2), C8 = run(8);
  EXPECT_GT(C1->metrics()->value(C1->ids().Particles), 0u);
  std::string F1 = metricFingerprint(*C1);
  EXPECT_EQ(F1, metricFingerprint(*C2));
  EXPECT_EQ(F1, metricFingerprint(*C8));
}

// The --txcache {on, off} x --threads {1, 2, 8} matrix: metric
// fingerprints and trace shapes are byte-identical across thread counts
// within each cache mode, the cache-on runs surface nonzero hit counters
// and the txcache span, and the cache-off runs surface neither.
TEST(Obs, TxCacheMatrixCountersAndTraceShape) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto runWith = [&](uint64_t CacheBytes, unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(true, true);
    ExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    Opts.TxCacheBytes = CacheBytes;
    Opts.Obs = Ctx;
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return std::make_pair(Ctx, R);
  };
  std::optional<Rational> Posterior;
  for (uint64_t CacheBytes : {uint64_t(0), TxCacheDefaultBytes}) {
    auto [Ctx1, R1] = runWith(CacheBytes, 1);
    std::string Metrics1 = metricFingerprint(*Ctx1);
    std::string Trace1 = stripTimestamps(Ctx1->tracer()->renderChromeJson());
    for (unsigned Threads : {2u, 8u}) {
      auto [Ctx, R] = runWith(CacheBytes, Threads);
      EXPECT_EQ(metricFingerprint(*Ctx), Metrics1)
          << "txcache=" << CacheBytes << " threads=" << Threads;
      EXPECT_EQ(stripTimestamps(Ctx->tracer()->renderChromeJson()), Trace1)
          << "txcache=" << CacheBytes << " threads=" << Threads;
    }
    // The posterior is identical across the cache modes too.
    ASSERT_TRUE(R1.concreteValue().has_value());
    if (!Posterior)
      Posterior = *R1.concreteValue();
    else
      EXPECT_EQ(*R1.concreteValue(), *Posterior);
    uint64_t Hits = Ctx1->metrics()->value(Ctx1->ids().TxCacheHits);
    bool HasSpan =
        Trace1.find("\"name\":\"exact.txcache\"") != std::string::npos;
    if (CacheBytes) {
      EXPECT_GT(Hits, 0u);
      EXPECT_EQ(Hits, R1.TxHits);
      EXPECT_TRUE(HasSpan);
    } else {
      EXPECT_EQ(Hits, 0u);
      EXPECT_FALSE(HasSpan);
    }
  }
}

TEST(Obs, TraceShapeDeterministicAcrossRunsAndThreads) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto traceOf = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(true, false);
    InferenceOptions Opts;
    Opts.Threads = Threads;
    Opts.Obs = Ctx;
    InferenceResult R = runInference(Net, Opts);
    EXPECT_TRUE(R.Status.ok());
    return stripTimestamps(Ctx->tracer()->renderChromeJson());
  };
  std::string A = traceOf(1);
  // Same event sequence, names, span ids, parents, args — byte for byte —
  // across a rerun and across thread counts.
  EXPECT_EQ(A, traceOf(1));
  EXPECT_EQ(A, traceOf(2));
  EXPECT_EQ(A, traceOf(8));
  EXPECT_NE(A.find("\"name\":\"inference\""), std::string::npos);
  EXPECT_NE(A.find("\"name\":\"exact.run\""), std::string::npos);
  EXPECT_NE(A.find("\"name\":\"exact.step\""), std::string::npos);
  EXPECT_NE(A.find("\"name\":\"exact.expand\""), std::string::npos);
  EXPECT_NE(A.find("\"name\":\"exact.merge\""), std::string::npos);

  // Same guarantee with the sharded path forced (ParallelThreshold 1):
  // the serial fused expand+merge emits the identical span pair the
  // two-phase parallel step does.
  auto forcedTraceOf = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(true, false);
    ExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    Opts.Obs = Ctx;
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return stripTimestamps(Ctx->tracer()->renderChromeJson());
  };
  std::string F = forcedTraceOf(1);
  EXPECT_EQ(F, forcedTraceOf(2));
  EXPECT_EQ(F, forcedTraceOf(8));
}

TEST(Obs, TranslatedEngineEmitsPsiSpans) {
  LoadedNetwork Net = load(scenarios::paperExample());
  auto Ctx = std::make_shared<ObsContext>(true, true);
  InferenceOptions Opts;
  Opts.Engine = EngineChoice::Translated;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  ASSERT_TRUE(R.Status.ok());
  std::string Json = Ctx->tracer()->renderChromeJson();
  EXPECT_NE(Json.find("\"name\":\"translate\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"psi.run\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"psi.stmt\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"psi.round\""), std::string::npos);
  ASSERT_TRUE(R.Translated.has_value());
  EXPECT_EQ(Ctx->metrics()->value(Ctx->ids().StatesExpanded),
            R.Translated->BranchesExpanded);
  EXPECT_EQ(R.Spent.MergeAttempts, R.Translated->MergeAttempts);
}

TEST(Obs, SmcEmitsResampleSpansAndParticleCounters) {
  LoadedNetwork Net = load(scenarios::reliabilityChain(2));
  auto Ctx = std::make_shared<ObsContext>(true, true);
  InferenceOptions Opts;
  Opts.Engine = EngineChoice::Smc;
  Opts.Particles = 256;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  ASSERT_TRUE(R.Status.ok());
  std::string Json = Ctx->tracer()->renderChromeJson();
  EXPECT_NE(Json.find("\"name\":\"smc.run\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"smc.step\""), std::string::npos);
  EXPECT_GT(Ctx->metrics()->value(Ctx->ids().Particles), 0u);
}

TEST(Obs, BudgetTripBecomesEventCounterAndSpendField) {
  LoadedNetwork Net = load(scenarios::gossip(4));
  auto Ctx = std::make_shared<ObsContext>(true, true);
  InferenceOptions Opts;
  Opts.Limits.MaxStates = 50;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  EXPECT_EQ(R.Status.Code, StatusCode::BudgetExceeded);
  EXPECT_EQ(R.Spent.TrippedBudget, "state");
  EXPECT_EQ(Ctx->metrics()->value(Ctx->ids().BudgetTrips), 1u);
  std::string Json = Ctx->tracer()->renderChromeJson();
  EXPECT_NE(Json.find("\"name\":\"budget-trip\""), std::string::npos);
  EXPECT_NE(Json.find("\"class\":\"state\""), std::string::npos);
}

TEST(Obs, FallbackEmitsEventAndCounter) {
  LoadedNetwork Net = load(scenarios::gossip(4));
  auto Ctx = std::make_shared<ObsContext>(true, true);
  InferenceOptions Opts;
  Opts.Limits.MaxStates = 50;
  Opts.OnBudgetExceeded = BudgetPolicy::FallbackSmc;
  Opts.Particles = 512;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  EXPECT_TRUE(R.FellBack);
  EXPECT_EQ(Ctx->metrics()->value(Ctx->ids().Fallbacks), 1u);
  std::string Json = Ctx->tracer()->renderChromeJson();
  EXPECT_NE(Json.find("\"name\":\"fallback-smc\""), std::string::npos);
  // The fallback sampler reuses the same context: its spans follow.
  EXPECT_NE(Json.find("\"name\":\"smc.run\""), std::string::npos);
}

TEST(Obs, FrontendPhasesEmitSpans) {
  auto Ctx = std::make_shared<ObsContext>(true, false);
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::gossip(3), Diags, ObsHandle(Ctx));
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  std::string Json = Ctx->tracer()->renderChromeJson();
  EXPECT_NE(Json.find("\"name\":\"lex\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"check\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Inference-quality diagnostics
//===----------------------------------------------------------------------===//

// The headline diagnostics guarantee: the full DiagReport JSON — every
// per-step ESS, weight CV, frontier size, merge hit-rate, and warning
// line — is byte-identical at 1 / 2 / 8 threads, for both engine
// families, with the sharded path forced.
TEST(Obs, DiagReportByteIdenticalAcrossThreadCountsExact) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto diagOf = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, false, true);
    ExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    Opts.Obs = Ctx;
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return Ctx->diag()->report().toJson();
  };
  std::string D1 = diagOf(1);
  EXPECT_FALSE(D1.empty());
  EXPECT_NE(D1.find("\"engine\": \"exact\""), std::string::npos);
  EXPECT_NE(D1.find("\"exact_rounds\": ["), std::string::npos);
  EXPECT_EQ(D1, diagOf(2));
  EXPECT_EQ(D1, diagOf(8));
}

TEST(Obs, DiagReportByteIdenticalAcrossThreadCountsSmc) {
  LoadedNetwork Net = load(scenarios::reliabilityChain(2));
  auto diagOf = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, false, true);
    SampleOptions Opts;
    Opts.Particles = 512;
    Opts.Seed = 7;
    Opts.Threads = Threads;
    Opts.Obs = Ctx;
    SampleResult R = Sampler(Net.Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return Ctx->diag()->report().toJson();
  };
  std::string D1 = diagOf(1);
  EXPECT_NE(D1.find("\"engine\": \"smc\""), std::string::npos);
  EXPECT_NE(D1.find("\"smc_steps\": ["), std::string::npos);
  EXPECT_EQ(D1, diagOf(2));
  EXPECT_EQ(D1, diagOf(8));
}

// Turning the other exporters on or off must not perturb the diagnostics:
// all diag quantities are charged at the same serial points whether or not
// a tracer / metrics registry is attached.
TEST(Obs, DiagReportIdenticalWithOtherExportersOnOrOff) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto diagOf = [&](bool Trace, bool Metrics) {
    auto Ctx = std::make_shared<ObsContext>(Trace, Metrics, true);
    ExactOptions Opts;
    Opts.Threads = 2;
    Opts.ParallelThreshold = 1;
    Opts.Obs = Ctx;
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return Ctx->diag()->report().toJson();
  };
  std::string DiagOnly = diagOf(false, false);
  EXPECT_EQ(DiagOnly, diagOf(true, true));
  EXPECT_EQ(DiagOnly, diagOf(true, false));
}

// Degeneracy end to end: a peaked observation kills ~95% of the particles
// in one step, so the warning fires, the degeneracy counter ticks, and the
// resample count agrees between the report, the per-step series, and the
// smc.resample spans in the trace.
TEST(Obs, DegenerateSmcStepWarnsAndCountersAgree) {
  LoadedNetwork Net = load(testnets::PeakedDieNetwork);
  auto Ctx = std::make_shared<ObsContext>(true, true, true);
  SampleOptions Opts;
  Opts.Particles = 2000;
  Opts.Seed = 11;
  Opts.Obs = Ctx;
  SampleResult R = Sampler(Net.Spec, Opts).run();
  ASSERT_TRUE(R.Status.ok());

  DiagReport Rep = Ctx->diag()->report();
  EXPECT_LT(Rep.Summary.MinEssFraction, Ctx->diag()->essWarnFraction());
  ASSERT_FALSE(Rep.Summary.Warnings.empty());
  EXPECT_NE(Rep.Summary.Warnings.front().find("ESS fell to"),
            std::string::npos);

  uint64_t ResampledSteps = 0;
  for (const SmcStepDiag &S : Rep.SmcSteps)
    if (S.Resampled)
      ++ResampledSteps;
  EXPECT_GT(Rep.Summary.Resamples, 0u);
  EXPECT_EQ(Rep.Summary.Resamples, ResampledSteps);
  std::string Json = Ctx->tracer()->renderChromeJson();
  EXPECT_EQ(countSubstr(Json, "\"name\":\"smc.resample\""),
            Rep.Summary.Resamples);
  EXPECT_EQ(countSubstr(Json, "\"name\":\"diag.degeneracy\""),
            Ctx->metrics()->value(Ctx->ids().DegeneracySteps));
  EXPECT_GE(Ctx->metrics()->value(Ctx->ids().DegeneracySteps), 1u);
}

// The optional exact-vs-SMC cross-check: on a small network the budgeted
// exact reference run exists, so the TV divergence is reported and small.
TEST(Obs, CrossCheckTvDivergenceReportedAndSmall) {
  LoadedNetwork Net = load(testnets::CoinNetwork);
  auto Ctx = std::make_shared<ObsContext>(false, false, true);
  InferenceOptions Opts;
  Opts.Engine = EngineChoice::Smc;
  Opts.Particles = 20000;
  Opts.CrossCheckTv = true;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  ASSERT_TRUE(R.Status.ok());
  ASSERT_TRUE(R.Diagnostics.TvDivergence.has_value());
  EXPECT_GE(*R.Diagnostics.TvDivergence, 0.0);
  EXPECT_LT(*R.Diagnostics.TvDivergence, 0.05);
  EXPECT_EQ(R.Diagnostics.Engine, "smc");
}

//===----------------------------------------------------------------------===//
// Prometheus exposition conformance
//===----------------------------------------------------------------------===//

// Prometheus 0.0.4 conformance over a real run's full registry render:
// HELP escaping, HELP/TYPE preceding every sample family, cumulative
// nondecreasing buckets, and +Inf bucket == _count.
TEST(Obs, RenderPromConformance) {
  // Escaping first, on a registry we control.
  {
    MetricsRegistry Reg;
    Reg.counter("esc_total", "line one\nline two \\ backslash");
    std::string Prom = Reg.renderProm();
    EXPECT_NE(Prom.find("# HELP esc_total line one\\nline two \\\\ "
                        "backslash\n"),
              std::string::npos);
    EXPECT_EQ(Prom.find("line one\nline"), std::string::npos)
        << "raw newline must not survive in HELP";
  }

  // Then the full engine registry after a real run.
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto [Ctx, R] = exactWithObs(Net, 2);
  ASSERT_TRUE(R.Status.ok());
  std::string Prom = Ctx->metrics()->renderProm();

  // Every family renders "# HELP name ..." then "# TYPE name kind", then
  // its samples; scan linewise.
  std::string PendingHelp, PendingType;
  size_t Families = 0;
  size_t Pos = 0;
  while (Pos < Prom.size()) {
    size_t Eol = Prom.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos) << "render must end in a newline";
    std::string Line = Prom.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.rfind("# HELP ", 0) == 0) {
      PendingHelp = Line.substr(7, Line.find(' ', 7) - 7);
      ++Families;
    } else if (Line.rfind("# TYPE ", 0) == 0) {
      PendingType = Line.substr(7, Line.find(' ', 7) - 7);
      EXPECT_EQ(PendingType, PendingHelp) << "TYPE follows its HELP";
    } else {
      ASSERT_FALSE(Line.empty());
      std::string Name = Line.substr(0, Line.find_first_of(" {"));
      EXPECT_EQ(Name.rfind(PendingType, 0), 0u)
          << "sample '" << Name << "' outside its TYPE'd family";
    }
  }
  EXPECT_GT(Families, 5u);

  // Histogram buckets are cumulative and end at +Inf == _count.
  for (const MetricValue &V : Ctx->metrics()->snapshot()) {
    if (V.BucketCounts.empty())
      continue;
    for (size_t I = 1; I < V.BucketCounts.size(); ++I)
      EXPECT_GE(V.BucketCounts[I], V.BucketCounts[I - 1]) << V.Name;
    EXPECT_EQ(V.BucketCounts.back(), V.Value)
        << V.Name << ": +Inf bucket must equal _count";
    std::string CountLine =
        V.Name + "_count " + std::to_string(V.Value) + "\n";
    EXPECT_NE(Prom.find(CountLine), std::string::npos);
    std::string InfLine =
        V.Name + "_bucket{le=\"+Inf\"} " + std::to_string(V.Value) + "\n";
    EXPECT_NE(Prom.find(InfLine), std::string::npos);
  }
}

// --log-json lines must stay valid JSON no matter what a caller stuffs
// into a field: control characters escape to \uNNNN, and byte sequences
// that are not well-formed UTF-8 (stray continuations, truncated leads,
// overlongs, surrogates, > U+10FFFF) become U+FFFD instead of corrupting
// the line for downstream parsers.
TEST(Obs, LogJsonEscapesControlCharsAndInvalidUtf8) {
  setLogJson(true);
  auto line = [](const std::string &Msg) {
    return formatLogLine(LogLevel::Info, "test", Msg, {});
  };

  // Named escapes and \uNNNN for the rest of 0x00-0x1F.
  EXPECT_NE(line("a\nb\tc\rd").find("a\\nb\\tc\\rd"), std::string::npos);
  EXPECT_NE(line("q\"w\\e").find("q\\\"w\\\\e"), std::string::npos);
  EXPECT_NE(line(std::string("x\x01y\x1fz", 5)).find("x\\u0001y\\u001fz"),
            std::string::npos);
  EXPECT_NE(line(std::string("nul\0!", 5)).find("nul\\u0000!"),
            std::string::npos);

  // Well-formed multi-byte sequences pass through verbatim.
  EXPECT_NE(line("caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x90\x9b")
                .find("caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x90\x9b"),
            std::string::npos);

  const std::string Fffd = "\xef\xbf\xbd"; // U+FFFD replacement character.
  // A stray continuation byte and a lead with no continuation.
  EXPECT_NE(line("a\x80z").find("a" + Fffd + "z"), std::string::npos);
  EXPECT_NE(line("a\xc3").find("a" + Fffd), std::string::npos);
  // A truncated 3-byte lead followed by valid ASCII keeps the ASCII.
  EXPECT_NE(line("a\xe2\x82z").find("a" + Fffd + Fffd + "z"),
            std::string::npos);
  // Overlong encoding of '/': both bytes are individually invalid.
  EXPECT_NE(line("a\xc0\xafz").find("a" + Fffd + Fffd + "z"),
            std::string::npos);
  // A UTF-16 surrogate (U+D800) and a code point past U+10FFFF.
  EXPECT_NE(line("a\xed\xa0\x80z").find("a" + Fffd + Fffd + Fffd + "z"),
            std::string::npos);
  EXPECT_NE(line("a\xf4\x90\x80\x80z").find("a" + Fffd), std::string::npos);

  // Field names and values are escaped the same way.
  std::string WithField = formatLogLine(
      LogLevel::Warn, "ev\x02nt", "m", {{"k\x1b", std::string("v\x80")}});
  EXPECT_NE(WithField.find("ev\\u0002nt"), std::string::npos);
  EXPECT_NE(WithField.find("k\\u001b"), std::string::npos);
  EXPECT_NE(WithField.find("v" + Fffd), std::string::npos);

  setLogJson(false);
  EXPECT_EQ(formatLogLine(LogLevel::Warn, "e", "plain", {}),
            "warning: plain");
}
