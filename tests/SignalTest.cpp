//===- tests/SignalTest.cpp - Signal-driven graceful shutdown -------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graceful signal-driven shutdown: a SIGINT/SIGTERM handler may do
/// nothing but trip a CancelToken (its requestCancel is a relaxed atomic
/// store, so it is async-signal-safe); the engines then drain their
/// workers at the next serial boundary, write a final snapshot, and
/// report a Cancelled status that maps to the CLI's exit code 3. The
/// in-process tests here install a real sigaction handler and raise() the
/// signal, mirroring examples/bayonet_cli.cpp exactly.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "obs/Introspect.h"
#include "support/Snapshot.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace bayonet;

namespace {

LoadedNetwork load(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  return std::move(*Net);
}

// The handler mirrors the CLI: one global token, one relaxed store.
CancelToken GTestCancel;

extern "C" void testSignalHandler(int) { GTestCancel.requestCancel(); }

/// Installs the handler for \p Sig and returns the previous action so the
/// test can restore it (gtest's death-test machinery and the default
/// disposition must survive this test).
struct sigaction installHandler(int Sig) {
  struct sigaction SA, Old;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = testSignalHandler;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESTART;
  sigaction(Sig, &SA, &Old);
  return Old;
}

std::string snapPath(const char *Tag) {
  return ::testing::TempDir() + "bayonet_signal_" + Tag + "_" +
         std::to_string(::getpid()) + ".snap";
}

} // namespace

// requestCancel is called from a real signal handler here; the run must
// stop with a Cancelled status at the next serial boundary.
TEST(Signal, SigtermTripsCancelTokenMidRun) {
  for (int Sig : {SIGTERM, SIGINT}) {
    SCOPED_TRACE(Sig == SIGTERM ? "SIGTERM" : "SIGINT");
    GTestCancel = CancelToken();
    struct sigaction Old = installHandler(Sig);

    LoadedNetwork Net = load(testnets::PaperExample);
    InferenceOptions Opts;
    Opts.Cancel = GTestCancel;

    // Raise the signal from a helper thread shortly after the run starts;
    // SA_RESTART keeps the engine's syscalls unperturbed, and the token
    // makes the stop boundary-clean no matter when the signal lands.
    std::thread Raiser([Sig] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ::kill(::getpid(), Sig);
    });
    InferenceResult R = runInference(Net, Opts);
    Raiser.join();
    sigaction(Sig, &Old, nullptr);

    // The signal may land after the (fast) run finished; both outcomes are
    // legal, but a stopped run must say Cancelled, never crash or hang.
    if (!R.Status.ok()) {
      EXPECT_NE(R.Status.toString().find("cancelled"), std::string::npos)
          << R.Status.toString();
    }
  }
}

// The full graceful-shutdown contract, made deterministic by tripping the
// token before the run: stop at the first boundary, write a final
// snapshot, and leave a state a later process resumes bit-identically.
TEST(Signal, GracefulShutdownWritesFinalSnapshotAndResumes) {
  GTestCancel = CancelToken();
  struct sigaction Old = installHandler(SIGTERM);
  ::raise(SIGTERM);
  sigaction(SIGTERM, &Old, nullptr);
  ASSERT_TRUE(GTestCancel.cancelRequested());

  LoadedNetwork Net = load(testnets::PaperExample);
  InferenceOptions PlainOpts;
  InferenceResult Straight = runInference(Net, PlainOpts);
  ASSERT_TRUE(Straight.Status.ok());

  std::string Path = snapPath("graceful");
  InferenceOptions Opts;
  Opts.Cancel = GTestCancel;
  CheckpointOptions CO;
  CO.OutPath = Path;
  Opts.Checkpoint = std::make_shared<Checkpointer>(CO);
  InferenceResult Stopped = runInference(Net, Opts);
  EXPECT_FALSE(Stopped.Status.ok());
  EXPECT_NE(Stopped.Status.toString().find("cancelled"), std::string::npos);
  EXPECT_GE(Opts.Checkpoint->writesDone(), 1u);

  InferenceOptions Res;
  CheckpointOptions RO;
  RO.ResumePath = Path;
  Res.Checkpoint = std::make_shared<Checkpointer>(RO);
  InferenceResult Resumed = runInference(Net, Res);
  ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();
  ASSERT_TRUE(Straight.Exact && Resumed.Exact);
  EXPECT_TRUE(Straight.Exact->QueryMass == Resumed.Exact->QueryMass);
  EXPECT_TRUE(Straight.Exact->OkMass == Resumed.Exact->OkMass);
  EXPECT_EQ(Straight.Spent.StatesExpanded, Resumed.Spent.StatesExpanded);
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

// A cancellation that lands mid-run (not pre-tripped) still leaves a
// resumable snapshot stream: cancel from a watcher thread once the run
// has made some progress, then finish from whatever snapshot survived.
TEST(Signal, MidRunCancelLeavesResumableStream) {
  LoadedNetwork Net = load(testnets::PaperExample);
  InferenceOptions PlainOpts;
  InferenceResult Straight = runInference(Net, PlainOpts);
  ASSERT_TRUE(Straight.Status.ok());

  std::string Path = snapPath("midrun");
  CancelToken Cancel;
  InferenceOptions Opts;
  Opts.Cancel = Cancel;
  CheckpointOptions CO;
  CO.OutPath = Path;
  Opts.Checkpoint = std::make_shared<Checkpointer>(CO);
  std::thread Watcher([&Cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    Cancel.requestCancel();
  });
  InferenceResult Stopped = runInference(Net, Opts);
  Watcher.join();

  if (Stopped.Status.ok()) {
    // The run outpaced the watcher — nothing to resume, and that's fine.
    std::remove(Path.c_str());
    std::remove((Path + ".prev").c_str());
    return;
  }
  ASSERT_GE(Opts.Checkpoint->writesDone(), 1u);
  InferenceOptions Res;
  CheckpointOptions RO;
  RO.ResumePath = Path;
  Res.Checkpoint = std::make_shared<Checkpointer>(RO);
  InferenceResult Resumed = runInference(Net, Res);
  ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();
  ASSERT_TRUE(Straight.Exact && Resumed.Exact);
  EXPECT_TRUE(Straight.Exact->QueryMass == Resumed.Exact->QueryMass);
  EXPECT_EQ(Straight.Spent.StatesExpanded, Resumed.Spent.StatesExpanded);
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

namespace {

/// True when a TCP connect to 127.0.0.1:Port succeeds (and closes it).
bool canConnect(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  bool Ok = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)) == 0;
  ::close(Fd);
  return Ok;
}

} // namespace

// The CLI's exit-path ordering contract: on every exit path — including a
// signal-driven cancelled one — the introspection server is stopped and
// its threads joined BEFORE the trace/metrics exporter files are
// rendered, so no scrape can observe a half-flushed registry and the
// flush itself needs no locks against live handlers. This mirrors the
// exportObs lambda in examples/bayonet_cli.cpp step for step.
TEST(Signal, ServerStopsBeforeObsFlushOnCancelledExit) {
  GTestCancel = CancelToken();
  struct sigaction Old = installHandler(SIGTERM);

  LoadedNetwork Net = load(testnets::PaperExample);
  auto Ctx = std::make_shared<ObsContext>(true, true, true);
  auto Server = std::make_shared<IntrospectServer>(Ctx);
  std::string Err;
  ASSERT_TRUE(Server->start("127.0.0.1:0", Err)) << Err;
  uint16_t Port = Server->port();
  ASSERT_TRUE(canConnect(Port)) << "server must be live mid-run";

  ::raise(SIGTERM);
  sigaction(SIGTERM, &Old, nullptr);
  ASSERT_TRUE(GTestCancel.cancelRequested());

  InferenceOptions Opts;
  Opts.Cancel = GTestCancel;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  EXPECT_FALSE(R.Status.ok());
  EXPECT_NE(R.Status.toString().find("cancelled"), std::string::npos);

  // Step 1 of the exit path: stop the server. Its threads are joined, so
  // the port must refuse connections...
  Server->stop();
  EXPECT_FALSE(Server->running());
  EXPECT_FALSE(canConnect(Port));

  // ...and step 2, the exporter flush, still renders everything the
  // cancelled run produced.
  std::string Trace = Ctx->tracer()->renderChromeJson();
  EXPECT_NE(Trace.find("\"name\":\"inference\""), std::string::npos);
  std::string Prom = Ctx->metrics()->renderProm();
  EXPECT_NE(Prom.find("# TYPE bayonet_states_expanded_total counter"),
            std::string::npos);
  EXPECT_FALSE(Ctx->diag()->report().toJson().empty());
}
