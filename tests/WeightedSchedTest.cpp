//===- tests/WeightedSchedTest.cpp - Weighted scheduler tests -------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weighted scheduler models heterogeneous equipment speed (paper
/// Section 2.1: "the scheduler might be used to model properties of the
/// equipment, such as link transmission delays and switch speed"). Two
/// hosts race a packet to a common sink; the sink records who arrived
/// first.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "lang/AstPrinter.h"
#include "psi/PsiExact.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

/// A: port 1 -> C's port 1; B: port 1 -> C's port 2. C remembers the port
/// of the first packet it sees.
std::string raceNetwork(const std::string &SchedDecl) {
  return R"(
topology {
  nodes { A, B, C }
  links { (A,pt1) <-> (C,pt1), (B,pt1) <-> (C,pt2) }
}
packet_fields { dst }
programs { A -> send, B -> send, C -> sink }
def send(pkt, pt) { fwd(1); }
def sink(pkt, pt) state first(0) {
  if first == 0 { first = pt; }
  drop;
}
init { A, B }
)" + SchedDecl + R"(
queue_capacity 2;
num_steps 20;
query probability(first@C == 1);
)";
}

Rational exactValue(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  if (!Net)
    return Rational(-1);
  ExactResult R = ExactEngine(Net->Spec).run();
  EXPECT_TRUE(R.concreteValue().has_value()) << R.UnsupportedReason;
  return R.concreteValue() ? *R.concreteValue() : Rational(-1);
}

TEST(WeightedSchedTest, EqualWeightsAreSymmetric) {
  // With all weights 1 the race is fair: P(A first) = 1/2 exactly.
  Rational P = exactValue(raceNetwork("scheduler weighted { A -> 1 };"));
  EXPECT_EQ(P, Rational(BigInt(1), BigInt(2)));
  // And identical to the uniform scheduler.
  EXPECT_EQ(P, exactValue(raceNetwork("scheduler uniform;")));
}

TEST(WeightedSchedTest, HeavierNodeWinsMoreOften) {
  Rational Fair = exactValue(raceNetwork("scheduler uniform;"));
  Rational Favored =
      exactValue(raceNetwork("scheduler weighted { A -> 3 };"));
  Rational Dominant =
      exactValue(raceNetwork("scheduler weighted { A -> 50 };"));
  EXPECT_GT(Favored, Fair);
  EXPECT_GT(Dominant, Favored);
  EXPECT_LT(Dominant, Rational(1)); // B still wins sometimes.
  // Symmetry: weighting B by the same factor mirrors the probability.
  Rational Mirror =
      exactValue(raceNetwork("scheduler weighted { B -> 3 };"));
  EXPECT_EQ(Favored + Mirror, Rational(1));
}

TEST(WeightedSchedTest, TranslatedEngineAgrees) {
  DiagEngine Diags;
  auto Net =
      loadNetwork(raceNetwork("scheduler weighted { A -> 3, C -> 2 };"),
                  Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  ExactResult Direct = ExactEngine(Net->Spec).run();
  DiagEngine TDiags;
  auto Psi = translateToPsi(Net->Spec, TDiags);
  ASSERT_TRUE(Psi.has_value()) << TDiags.toString();
  PsiExactResult Translated = PsiExact(*Psi).run();
  ASSERT_TRUE(Direct.concreteValue().has_value());
  ASSERT_TRUE(Translated.concreteValue().has_value());
  EXPECT_EQ(*Direct.concreteValue(), *Translated.concreteValue());
}

TEST(WeightedSchedTest, SamplerAgreesStatistically) {
  DiagEngine Diags;
  auto Net =
      loadNetwork(raceNetwork("scheduler weighted { A -> 3 };"), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  ExactResult Exact = ExactEngine(Net->Spec).run();
  SampleOptions Opts;
  Opts.Particles = 20000;
  SampleResult S = Sampler(Net->Spec, Opts).run();
  EXPECT_NEAR(S.Value, Exact.concreteValue()->toDouble(), 0.02);
}

TEST(WeightedSchedTest, CheckerRejectsBadWeights) {
  auto expectError = [](const std::string &Sched, const char *Needle) {
    DiagEngine Diags;
    auto Net = loadNetwork(raceNetwork(Sched), Diags);
    EXPECT_FALSE(Net.has_value());
    bool Found = false;
    for (const Diag &D : Diags.diags())
      if (D.Message.find(Needle) != std::string::npos)
        Found = true;
    EXPECT_TRUE(Found) << Diags.toString();
  };
  expectError("scheduler weighted { D -> 2 };", "unknown node 'D'");
  expectError("scheduler weighted { A -> 0 };", "must be positive");
  expectError("scheduler uniform { A -> 2 };",
              "requires the 'weighted' scheduler");
}

TEST(WeightedSchedTest, PrinterRoundTripsWeights) {
  DiagEngine D1;
  SourceFile F1 =
      Parser::parse(raceNetwork("scheduler weighted { A -> 3, B -> 2 };"),
                    D1);
  ASSERT_FALSE(D1.hasErrors()) << D1.toString();
  std::string Printed = printSourceFile(F1);
  EXPECT_NE(Printed.find("scheduler weighted { A -> 3, B -> 2 };"),
            std::string::npos);
  DiagEngine D2;
  SourceFile F2 = Parser::parse(Printed, D2);
  ASSERT_FALSE(D2.hasErrors());
  EXPECT_EQ(Printed, printSourceFile(F2));
}

} // namespace
