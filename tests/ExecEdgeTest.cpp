//===- tests/ExecEdgeTest.cpp - Operational-semantics edge cases ----------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases of the local and global semantics: stuck statements become
/// the ⊥ error state, full queues drop silently at every enqueue site,
/// packets to unconnected ports leave the network, and runtime errors in
/// expressions are contained per branch.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

Rational q(int64_t N, int64_t D = 1) { return Rational(BigInt(N), BigInt(D)); }

/// Two nodes A <-> B with program bodies spliced in.
std::string twoNode(const std::string &ADef, const std::string &BDef,
                    const std::string &Query,
                    const std::string &Extra = "queue_capacity 2;") {
  return "topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }\n"
         "packet_fields { f }\n"
         "programs { A -> a, B -> b }\n" +
         ADef + "\n" + BDef + "\ninit { A }\n" + Extra +
         "\nscheduler uniform;\nnum_steps 20;\nquery " + Query + ";\n";
}

ExactResult runNet(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  if (!Net)
    return {};
  return ExactEngine(Net->Spec).run();
}

TEST(ExecEdgeTest, DropOnEmptyQueueIsBottom) {
  // The second drop finds an empty queue: the drop rule cannot fire and
  // the node enters ⊥.
  ExactResult R = runNet(twoNode("def a(pkt, pt) { drop; drop; }",
                                 "def b(pkt, pt) { drop; }",
                                 "probability(0 == 0)"));
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
}

TEST(ExecEdgeTest, FwdAfterDropIsBottom) {
  ExactResult R = runNet(twoNode("def a(pkt, pt) { drop; fwd(1); }",
                                 "def b(pkt, pt) { drop; }",
                                 "probability(0 == 0)"));
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
}

TEST(ExecEdgeTest, PortReadAfterDropIsBottom) {
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state x(0) { drop; x = pt; }",
      "def b(pkt, pt) { drop; }", "probability(0 == 0)"));
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
}

TEST(ExecEdgeTest, FwdToUnconnectedPortDropsPacket) {
  // Port 7 has no link: the packet leaves the network; no error, and B
  // never sees it.
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) { fwd(7); }",
      "def b(pkt, pt) state got(0) { got = 1; drop; }",
      "probability(got@B == 1)"));
  EXPECT_TRUE(R.ErrorMass.isZero());
  EXPECT_EQ(*R.concreteValue(), q(0));
}

TEST(ExecEdgeTest, FwdToSymbolicPortIsBottom) {
  ExactResult R = runNet("param P;\n" +
                         twoNode("def a(pkt, pt) { fwd(P); }",
                                 "def b(pkt, pt) { drop; }",
                                 "probability(0 == 0)"));
  // All mass is error mass regardless of the parameter value.
  EXPECT_TRUE(R.OkMass.isZero());
}

TEST(ExecEdgeTest, FlipOutOfRangeIsBottom) {
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state x(0) { x = flip(3/2); drop; }",
      "def b(pkt, pt) { drop; }", "probability(0 == 0)"));
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
}

TEST(ExecEdgeTest, UniformIntEmptyRangeIsBottom) {
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state x(0) { x = uniformInt(3, 1); drop; }",
      "def b(pkt, pt) { drop; }", "probability(0 == 0)"));
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
}

TEST(ExecEdgeTest, ErrorAfterRandomSplitIsPartial) {
  // Only the branch that divides by zero errors; the other terminates.
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state x(0), y(1) {"
      "  if flip(1/4) { x = y / 0; } else { x = 5; } drop; }",
      "def b(pkt, pt) { drop; }", "probability(x@A == 5)"));
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1, 4));
  EXPECT_EQ(R.OkMass.concreteValue(), q(3, 4));
  EXPECT_EQ(*R.concreteValue(), q(1)); // Among surviving mass, x == 5.
}

TEST(ExecEdgeTest, NewOnFullQueueIsSilent) {
  // Capacity 1: the seed packet fills the queue, both `new`s are dropped,
  // and the program still runs to completion.
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state n(0) { new; new; n = 1; drop; }",
      "def b(pkt, pt) { drop; }", "probability(n@A == 1)",
      "queue_capacity 1;"));
  EXPECT_TRUE(R.ErrorMass.isZero());
  EXPECT_EQ(*R.concreteValue(), q(1));
}

TEST(ExecEdgeTest, DupThenModifyAffectsOnlyHead) {
  // dup copies the head; modifying pkt.f afterwards changes the new head
  // (the copy), not the original underneath.
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state first(0), second(0) {"
      "  if first == 0 {"
      "    dup; pkt.f = 1; first = pkt.f; fwd(1);"
      "  } else { second = pkt.f; drop; } }",
      "def b(pkt, pt) { drop; }", "probability(second@A == 0)"));
  // The original packet (f = 0) remains and is read on the second Run.
  EXPECT_EQ(*R.concreteValue(), q(1));
}

TEST(ExecEdgeTest, ObserveInStateInitConditionsInitialDistribution) {
  // Random initializers participate in inference; a prior of flip(1/2)
  // observed through the program body conditions correctly.
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state coin(flip(1/2)), seen(0) {"
      "  observe(coin == 1); seen = 1; drop; }",
      "def b(pkt, pt) { drop; }", "probability(seen@A == 1)"));
  EXPECT_EQ(R.OkMass.concreteValue(), q(1, 2)); // Half the mass survives.
  EXPECT_EQ(*R.concreteValue(), q(1));
}

TEST(ExecEdgeTest, DeliveryToFullInputQueueDropsPacket) {
  // B never runs (scheduler races are removed by the deterministic
  // scheduler) — actually here we fill B's capacity-1 queue with the
  // first packet and the second delivery must be dropped.
  std::string Src =
      "topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }\n"
      "packet_fields { f }\n"
      "programs { A -> a, B -> b }\n"
      "def a(pkt, pt) state n(0) {\n"
      "  if n < 2 { new; fwd(1); n = n + 1; } else { drop; }\n"
      "}\n"
      "def b(pkt, pt) state got(0) { got = got + 1; drop; }\n"
      "init { A }\n"
      "queue_capacity 1;\n"
      "scheduler deterministic;\n"
      "num_steps 30;\n"
      "query expectation(got@B);\n";
  ExactResult R = runNet(Src);
  EXPECT_TRUE(R.ErrorMass.isZero());
  // Capacity 1 on A's input queue blocks `new` while the seed is queued,
  // so exactly one packet crosses (same effect as TinyCongestion).
  EXPECT_EQ(*R.concreteValue(), q(1));
}

TEST(ExecEdgeTest, WhileWithRandomExitTerminates) {
  // A truncated geometric loop: keep flipping until heads (at most 30
  // times); E[flips] is within 2^-25 of 2.
  ExactResult R = runNet(twoNode(
      "def a(pkt, pt) state n(0), done(0) {"
      "  while done == 0 and n < 30 { done = flip(1/2); n = n + 1; }"
      "  drop; }",
      "def b(pkt, pt) { drop; }", "expectation(n@A)"));
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_NEAR(R.concreteValue()->toDouble(), 2.0, 1e-6);
  EXPECT_TRUE(R.ErrorMass.isZero());
}

TEST(ExecEdgeTest, MultiplySymbolicBySymbolicIsBottom) {
  ExactResult R = runNet(
      "param P;\n" +
      twoNode("def a(pkt, pt) state x(0) { x = P * P; drop; }",
              "def b(pkt, pt) { drop; }", "probability(0 == 0)"));
  EXPECT_TRUE(R.OkMass.isZero());
}

TEST(ExecEdgeTest, SymbolicParamArithmeticWorks) {
  ExactResult R = runNet(
      "param P = 3;\n" +
      twoNode("def a(pkt, pt) state x(0) { x = 2 * P + 1; drop; }",
              "def b(pkt, pt) { drop; }", "probability(x@A == 7)"));
  EXPECT_EQ(*R.concreteValue(), q(1));
}

} // namespace
