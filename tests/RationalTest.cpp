//===- tests/RationalTest.cpp - Rational unit and property tests ----------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

Rational q(int64_t N, int64_t D) { return Rational(BigInt(N), BigInt(D)); }

TEST(RationalTest, CanonicalForm) {
  EXPECT_EQ(q(2, 4).toString(), "1/2");
  EXPECT_EQ(q(-2, 4).toString(), "-1/2");
  EXPECT_EQ(q(2, -4).toString(), "-1/2");
  EXPECT_EQ(q(-2, -4).toString(), "1/2");
  EXPECT_EQ(q(0, -7).toString(), "0");
  EXPECT_EQ(q(0, -7).den().toString(), "1");
  EXPECT_EQ(q(6, 3).toString(), "2");
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ((q(1, 2) + q(1, 3)).toString(), "5/6");
  EXPECT_EQ((q(1, 2) - q(1, 3)).toString(), "1/6");
  EXPECT_EQ((q(2, 3) * q(3, 4)).toString(), "1/2");
  EXPECT_EQ((q(2, 3) / q(4, 3)).toString(), "1/2");
  EXPECT_EQ((-q(2, 3)).toString(), "-2/3");
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(q(1, 3), q(1, 2));
  EXPECT_LT(q(-1, 2), q(-1, 3));
  EXPECT_LE(q(2, 4), q(1, 2));
  EXPECT_EQ(q(2, 4), q(1, 2));
  EXPECT_GT(q(7, 8), q(6, 7));
}

TEST(RationalTest, FromString) {
  Rational R;
  EXPECT_TRUE(Rational::fromString("3/9", R));
  EXPECT_EQ(R.toString(), "1/3");
  EXPECT_TRUE(Rational::fromString("-42", R));
  EXPECT_EQ(R.toString(), "-42");
  EXPECT_FALSE(Rational::fromString("1/0", R));
  EXPECT_FALSE(Rational::fromString("1/", R));
  EXPECT_FALSE(Rational::fromString("/2", R));
  EXPECT_FALSE(Rational::fromString("a/2", R));
  EXPECT_TRUE(Rational::fromString("30378810105265/67706637778944", R));
  EXPECT_NEAR(R.toDouble(), 0.4487, 1e-4);
}

TEST(RationalTest, TruncAndFloor) {
  EXPECT_EQ(q(7, 2).truncToInteger().toString(), "3");
  EXPECT_EQ(q(-7, 2).truncToInteger().toString(), "-3");
  EXPECT_EQ(q(7, 2).floorToInteger().toString(), "3");
  EXPECT_EQ(q(-7, 2).floorToInteger().toString(), "-4");
  EXPECT_EQ(q(-6, 2).floorToInteger().toString(), "-3");
}

TEST(RationalTest, FieldAxiomsOnRandomValues) {
  Xoshiro Rng(2024);
  auto randQ = [&Rng] {
    int64_t N = static_cast<int64_t>(Rng.next() % 2001) - 1000;
    int64_t D = static_cast<int64_t>(Rng.next() % 1000) + 1;
    return Rational(BigInt(N), BigInt(D));
  };
  for (int Iter = 0; Iter < 300; ++Iter) {
    Rational A = randQ(), B = randQ(), C = randQ();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A + (-A), Rational(0));
    if (!A.isZero()) {
      EXPECT_EQ(A / A, Rational(1));
    }
    EXPECT_EQ(A - B, A + (-B));
  }
}

// Reference arithmetic straight out of the definition, in pure BigInt —
// no Rational fast paths anywhere: cross-multiply, then reduce with
// BigInt::gcd. The property tests below pit the small-int64 fast paths
// (and their overflow-promotion to the BigInt path) against this.
struct RefQ {
  BigInt N, D; // D > 0, gcd(N, D) == 1.

  static RefQ make(BigInt N, BigInt D) {
    if (D.isNegative()) {
      N = -N;
      D = -D;
    }
    if (N.isZero())
      return {BigInt(0), BigInt(1)};
    BigInt G = BigInt::gcd(N, D);
    return {N / G, D / G};
  }
  static RefQ of(const Rational &Q) { return {Q.num(), Q.den()}; }
  static RefQ add(const RefQ &A, const RefQ &B) {
    return make(A.N * B.D + B.N * A.D, A.D * B.D);
  }
  static RefQ sub(const RefQ &A, const RefQ &B) {
    return make(A.N * B.D - B.N * A.D, A.D * B.D);
  }
  static RefQ mul(const RefQ &A, const RefQ &B) {
    return make(A.N * B.N, A.D * B.D);
  }
  static RefQ div(const RefQ &A, const RefQ &B) {
    return make(A.N * B.D, A.D * B.N);
  }
  bool matches(const Rational &Q) const {
    return Q.num().toString() == N.toString() &&
           Q.den().toString() == D.toString();
  }
};

TEST(RationalTest, SmallBigBoundaryCrossings) {
  // Magnitudes chosen to straddle the INT64 overflow boundary: products
  // and cross-products of two ~2^62 components overflow int64, so every
  // operation exercises the promotion bail-out; small magnitudes keep the
  // fast path itself covered, including gcd normalization both sides.
  Xoshiro Rng(0xb0a7);
  auto randComponent = [&Rng]() -> int64_t {
    switch (Rng.next() % 4) {
    case 0: // Tiny: stays on the fast path through every op.
      return static_cast<int64_t>(Rng.next() % 64) + 1;
    case 1: // Mid: products overflow, sums do not.
      return static_cast<int64_t>(Rng.next() % (1ull << 33)) + 3;
    case 2: // Near the boundary: nearly everything overflows.
      return INT64_MAX - static_cast<int64_t>(Rng.next() % 1024);
    default: // Edge values, including INT64_MIN's magnitude.
      return static_cast<int64_t>((1ull << 63) -
                                  (Rng.next() % 3) * (Rng.next() % 2));
    }
  };
  auto randQ = [&]() -> Rational {
    int64_t N = randComponent();
    if (Rng.next() & 1)
      N = (N == INT64_MIN) ? INT64_MIN : -N;
    int64_t D = randComponent();
    if (D == INT64_MIN)
      D = INT64_MAX; // Keep the denominator positive-representable.
    return Rational(BigInt(N), BigInt(D));
  };
  for (int Iter = 0; Iter < 500; ++Iter) {
    Rational A = randQ(), B = randQ();
    RefQ RA = RefQ::of(A), RB = RefQ::of(B);
    EXPECT_TRUE(RefQ::add(RA, RB).matches(A + B));
    EXPECT_TRUE(RefQ::sub(RA, RB).matches(A - B));
    EXPECT_TRUE(RefQ::mul(RA, RB).matches(A * B));
    if (!B.isZero())
      EXPECT_TRUE(RefQ::div(RA, RB).matches(A / B));
    // Compound ops must agree with their out-of-place forms exactly.
    Rational S = A;
    S += B;
    EXPECT_EQ(S, A + B);
    S = A;
    S -= B;
    EXPECT_EQ(S, A - B);
    S = A;
    S *= B;
    EXPECT_EQ(S, A * B);
    if (!B.isZero()) {
      S = A;
      S /= B;
      EXPECT_EQ(S, A / B);
    }
    // Canonical-form invariants hold on both sides of the boundary.
    Rational P = A * B;
    EXPECT_TRUE(P.isZero() || BigInt::gcd(P.num(), P.den()).isOne());
    EXPECT_FALSE(P.den().isNegative());
  }
}

TEST(RationalTest, SmallBigBoundaryEdgeCases) {
  const int64_t Min = INT64_MIN, Max = INT64_MAX;
  // INT64_MIN numerators and magnitudes: negation in the fast paths would
  // overflow, so these must promote — and still come out canonical.
  Rational MinQ{BigInt(Min), BigInt(1)};
  EXPECT_EQ(MinQ + MinQ, Rational(BigInt(Min) + BigInt(Min), BigInt(1)));
  EXPECT_EQ(MinQ - MinQ, Rational(0));
  EXPECT_TRUE(RefQ::mul(RefQ::of(MinQ), RefQ::of(MinQ))
                  .matches(MinQ * MinQ));
  EXPECT_EQ(MinQ / MinQ, Rational(1));
  Rational MinOverMax{BigInt(Min), BigInt(Max)};
  EXPECT_TRUE(RefQ::div(RefQ::of(MinOverMax), RefQ::of(MinOverMax))
                  .matches(MinOverMax / MinOverMax));
  // Denominator sign normalization across the divide fast path.
  Rational Neg = q(1, 3) / q(-2, 5);
  EXPECT_EQ(Neg, q(-5, 6));
  EXPECT_FALSE(Neg.den().isNegative());
  // A sum whose intermediate cross products overflow but whose reduced
  // result is small again: (Max-1)/Max + 1/Max == 1.
  Rational AlmostOne{BigInt(Max - 1), BigInt(Max)};
  EXPECT_TRUE((AlmostOne + Rational(BigInt(1), BigInt(Max))).isOne());
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(q(2, 4).hash(), q(1, 2).hash());
  EXPECT_EQ(q(-10, 5).hash(), Rational(-2).hash());
}

TEST(RationalTest, ProbabilityAccumulationExactness) {
  // Summing 1/3 three times is exactly one; no floating-point drift.
  Rational Third = q(1, 3);
  Rational Sum = Third + Third + Third;
  EXPECT_TRUE(Sum.isOne());
  // Geometric-style accumulation stays exact.
  Rational Total;
  Rational W(1);
  for (int I = 0; I < 20; ++I) {
    W = W * q(1, 2);
    Total += W;
  }
  EXPECT_EQ(Total, Rational(1) - W);
}

} // namespace
