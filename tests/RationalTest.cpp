//===- tests/RationalTest.cpp - Rational unit and property tests ----------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

Rational q(int64_t N, int64_t D) { return Rational(BigInt(N), BigInt(D)); }

TEST(RationalTest, CanonicalForm) {
  EXPECT_EQ(q(2, 4).toString(), "1/2");
  EXPECT_EQ(q(-2, 4).toString(), "-1/2");
  EXPECT_EQ(q(2, -4).toString(), "-1/2");
  EXPECT_EQ(q(-2, -4).toString(), "1/2");
  EXPECT_EQ(q(0, -7).toString(), "0");
  EXPECT_EQ(q(0, -7).den().toString(), "1");
  EXPECT_EQ(q(6, 3).toString(), "2");
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ((q(1, 2) + q(1, 3)).toString(), "5/6");
  EXPECT_EQ((q(1, 2) - q(1, 3)).toString(), "1/6");
  EXPECT_EQ((q(2, 3) * q(3, 4)).toString(), "1/2");
  EXPECT_EQ((q(2, 3) / q(4, 3)).toString(), "1/2");
  EXPECT_EQ((-q(2, 3)).toString(), "-2/3");
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(q(1, 3), q(1, 2));
  EXPECT_LT(q(-1, 2), q(-1, 3));
  EXPECT_LE(q(2, 4), q(1, 2));
  EXPECT_EQ(q(2, 4), q(1, 2));
  EXPECT_GT(q(7, 8), q(6, 7));
}

TEST(RationalTest, FromString) {
  Rational R;
  EXPECT_TRUE(Rational::fromString("3/9", R));
  EXPECT_EQ(R.toString(), "1/3");
  EXPECT_TRUE(Rational::fromString("-42", R));
  EXPECT_EQ(R.toString(), "-42");
  EXPECT_FALSE(Rational::fromString("1/0", R));
  EXPECT_FALSE(Rational::fromString("1/", R));
  EXPECT_FALSE(Rational::fromString("/2", R));
  EXPECT_FALSE(Rational::fromString("a/2", R));
  EXPECT_TRUE(Rational::fromString("30378810105265/67706637778944", R));
  EXPECT_NEAR(R.toDouble(), 0.4487, 1e-4);
}

TEST(RationalTest, TruncAndFloor) {
  EXPECT_EQ(q(7, 2).truncToInteger().toString(), "3");
  EXPECT_EQ(q(-7, 2).truncToInteger().toString(), "-3");
  EXPECT_EQ(q(7, 2).floorToInteger().toString(), "3");
  EXPECT_EQ(q(-7, 2).floorToInteger().toString(), "-4");
  EXPECT_EQ(q(-6, 2).floorToInteger().toString(), "-3");
}

TEST(RationalTest, FieldAxiomsOnRandomValues) {
  Xoshiro Rng(2024);
  auto randQ = [&Rng] {
    int64_t N = static_cast<int64_t>(Rng.next() % 2001) - 1000;
    int64_t D = static_cast<int64_t>(Rng.next() % 1000) + 1;
    return Rational(BigInt(N), BigInt(D));
  };
  for (int Iter = 0; Iter < 300; ++Iter) {
    Rational A = randQ(), B = randQ(), C = randQ();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A + (-A), Rational(0));
    if (!A.isZero()) {
      EXPECT_EQ(A / A, Rational(1));
    }
    EXPECT_EQ(A - B, A + (-B));
  }
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(q(2, 4).hash(), q(1, 2).hash());
  EXPECT_EQ(q(-10, 5).hash(), Rational(-2).hash());
}

TEST(RationalTest, ProbabilityAccumulationExactness) {
  // Summing 1/3 three times is exactly one; no floating-point drift.
  Rational Third = q(1, 3);
  Rational Sum = Third + Third + Third;
  EXPECT_TRUE(Sum.isOne());
  // Geometric-style accumulation stays exact.
  Rational Total;
  Rational W(1);
  for (int I = 0; I < 20; ++I) {
    W = W * q(1, 2);
    Total += W;
  }
  EXPECT_EQ(Total, Rational(1) - W);
}

} // namespace
