//===- tests/ParallelDeterminismTest.cpp - Parallel determinism -----------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel inference engines promise bit-identical results for every
/// thread count: exact weights are order-independent rationals, sampler
/// particles own split PRNG streams assigned in particle order. These tests
/// pin that promise on the Table 1 scenarios, forcing the parallel code
/// path with ParallelThreshold = 1 and oversubscribed lane counts (the
/// shard structure, not the physical core count, is what must not leak
/// into results).
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "obs/Profile.h"
#include "psi/PsiExact.h"
#include "psi/PsiSampler.h"
#include "scenarios/Scenarios.h"
#include "support/Snapshot.h"
#include "support/ThreadPool.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace bayonet;

namespace {

Rational q(int64_t N, int64_t D = 1) { return Rational(BigInt(N), BigInt(D)); }

ExactResult exactWithThreads(const LoadedNetwork &Net, unsigned Threads) {
  ExactOptions Opts;
  Opts.Threads = Threads;
  Opts.ParallelThreshold = 1; // Force the sharded path for Threads > 1.
  ExactResult R = ExactEngine(Net.Spec, Opts).run();
  EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
  return R;
}

/// Renders the full result state that must not depend on the thread count.
std::string fingerprint(const ExactResult &R, const ParamTable &Params) {
  return R.QueryMass.toString(Params) + "|" + R.OkMass.toString(Params) +
         "|" + R.ErrorMass.toString(Params);
}

TEST(ParallelDeterminism, ExactTableOneScenariosBitIdentical) {
  struct Case {
    const char *Name;
    std::string Src;
    const char *PinnedValue; // nullptr: only cross-thread equality.
  };
  const Case Cases[] = {
      {"paperExample", scenarios::paperExample(),
       "30378810105265/67706637778944"},
      {"congestion1", scenarios::congestionChain(1, "uniform"), nullptr},
      {"reliability3", scenarios::reliabilityChain(3), nullptr},
      {"gossip4", scenarios::gossip(4), "94/27"},
  };
  for (const Case &C : Cases) {
    DiagEngine Diags;
    auto Net = loadNetwork(C.Src, Diags);
    ASSERT_TRUE(Net.has_value()) << C.Name << ": " << Diags.toString();
    ExactResult Base = exactWithThreads(*Net, 1);
    ASSERT_TRUE(Base.concreteValue().has_value()) << C.Name;
    if (C.PinnedValue) {
      EXPECT_EQ(Base.concreteValue()->toString(), C.PinnedValue) << C.Name;
    }
    std::string BaseFp = fingerprint(Base, Net->Spec.Params);
    for (unsigned Threads : {2u, 8u}) {
      ExactResult R = exactWithThreads(*Net, Threads);
      EXPECT_EQ(fingerprint(R, Net->Spec.Params), BaseFp)
          << C.Name << " with " << Threads << " threads";
      ASSERT_TRUE(R.concreteValue().has_value());
      EXPECT_EQ(*R.concreteValue(), *Base.concreteValue())
          << C.Name << " with " << Threads << " threads";
      // Expansion and merge totals are sharding-invariant too.
      EXPECT_EQ(R.ConfigsExpanded, Base.ConfigsExpanded) << C.Name;
      EXPECT_EQ(R.MergeHits, Base.MergeHits) << C.Name;
    }
  }
}

TEST(ParallelDeterminism, ExactWorkerCountersCoverAllExpansions) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::paperExample(), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  ExactResult R = exactWithThreads(*Net, 8);
  // With ParallelThreshold = 1 every step fans out, so the per-lane
  // counters account for every expanded configuration.
  ASSERT_EQ(R.WorkerConfigsExpanded.size(), 8u);
  size_t Sum = 0;
  for (size_t N : R.WorkerConfigsExpanded)
    Sum += N;
  EXPECT_EQ(Sum, R.ConfigsExpanded);
  EXPECT_GT(R.MergeHits, 0u); // The paper example merges configurations.
}

TEST(ParallelDeterminism, PsiExactTranslatedBitIdentical) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::paperExample(), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  auto Psi = translateToPsi(Net->Spec, Diags);
  ASSERT_TRUE(Psi.has_value()) << Diags.toString();

  auto runWith = [&](unsigned Threads) {
    PsiExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    PsiExactResult R = PsiExact(*Psi, Opts).run();
    EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
    return R;
  };
  PsiExactResult Base = runWith(1);
  ASSERT_TRUE(Base.concreteValue().has_value());
  EXPECT_EQ(Base.concreteValue()->toString(), "30378810105265/67706637778944");
  for (unsigned Threads : {2u, 8u}) {
    PsiExactResult R = runWith(Threads);
    ASSERT_TRUE(R.concreteValue().has_value()) << Threads;
    EXPECT_EQ(*R.concreteValue(), *Base.concreteValue()) << Threads;
    EXPECT_EQ(R.OkMass.toString(Net->Spec.Params),
              Base.OkMass.toString(Net->Spec.Params));
    EXPECT_EQ(R.ErrorMass.toString(Net->Spec.Params),
              Base.ErrorMass.toString(Net->Spec.Params));
    EXPECT_EQ(R.BranchesExpanded, Base.BranchesExpanded);
    EXPECT_EQ(R.MergeHits, Base.MergeHits);
  }
}

TEST(ParallelDeterminism, SamplerSeededRunsIdenticalAcrossThreadCounts) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::reliabilityChain(2), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  auto runWith = [&](unsigned Threads, uint64_t Seed) {
    SampleOptions Opts;
    Opts.Particles = 300;
    Opts.Seed = Seed;
    Opts.Threads = Threads;
    return Sampler(Net->Spec, Opts).run();
  };
  SampleResult Base = runWith(1, 42);
  for (unsigned Threads : {2u, 8u}) {
    SampleResult R = runWith(Threads, 42);
    EXPECT_EQ(R.Value, Base.Value) << Threads;
    EXPECT_EQ(R.StdError, Base.StdError) << Threads;
    EXPECT_EQ(R.Survivors, Base.Survivors) << Threads;
    EXPECT_EQ(R.ErrorFraction, Base.ErrorFraction) << Threads;
  }
  // Same seed reproduces; a different seed draws different streams.
  SampleResult Again = runWith(1, 42);
  EXPECT_EQ(Again.Value, Base.Value);
  EXPECT_EQ(Again.StdError, Base.StdError);
}

TEST(ParallelDeterminism, PsiSamplerSeededRunsIdenticalAcrossThreadCounts) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  unsigned Y = P.addVar("y");
  P.Body.push_back(sAssign(X, pFlip(pConst(q(1, 3)))));
  P.Body.push_back(sAssign(Y, pUniformInt(pInt(0), pInt(5))));
  P.Result = pBin(BinOpKind::Or, pVar(X),
                  pBin(BinOpKind::Eq, pVar(Y), pInt(0)));
  auto runWith = [&](unsigned Threads) {
    PsiSampleOptions Opts;
    Opts.Particles = 500;
    Opts.Seed = 7;
    Opts.Threads = Threads;
    return PsiSampler(P, Opts).run();
  };
  PsiSampleResult Base = runWith(1);
  for (unsigned Threads : {2u, 8u}) {
    PsiSampleResult R = runWith(Threads);
    EXPECT_EQ(R.Value, Base.Value) << Threads;
    EXPECT_EQ(R.Survivors, Base.Survivors) << Threads;
    EXPECT_EQ(R.ErrorFraction, Base.ErrorFraction) << Threads;
  }
}

// The diagnostics report rides the same serial checkpoints as the engine
// results, so the rendered JSON — per-step ESS and frontier series,
// summary, warnings — must be bit-identical at every thread count for
// every engine family, with the sharded paths forced.
TEST(ParallelDeterminism, DiagReportBitIdenticalAcrossThreadCounts) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::paperExample(), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  auto Psi = translateToPsi(Net->Spec, Diags);
  ASSERT_TRUE(Psi.has_value()) << Diags.toString();

  auto exactDiag = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, false, true);
    ExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    Opts.Obs = Ctx;
    ExactResult R = ExactEngine(Net->Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return Ctx->diag()->report().toJson();
  };
  auto psiDiag = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, false, true);
    PsiExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    Opts.Obs = Ctx;
    PsiExactResult R = PsiExact(*Psi, Opts).run();
    EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
    return Ctx->diag()->report().toJson();
  };
  auto samplerDiag = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, false, true);
    SampleOptions Opts;
    Opts.Particles = 400;
    Opts.Seed = 42;
    Opts.Threads = Threads;
    Opts.Obs = Ctx;
    SampleResult R = Sampler(Net->Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return Ctx->diag()->report().toJson();
  };
  auto psiSamplerDiag = [&](unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, false, true);
    PsiSampleOptions Opts;
    Opts.Particles = 400;
    Opts.Seed = 42;
    Opts.Threads = Threads;
    Opts.Obs = Ctx;
    PsiSampleResult R = PsiSampler(*Psi, Opts).run();
    return Ctx->diag()->report().toJson();
  };

  const std::string Exact1 = exactDiag(1), Psi1 = psiDiag(1),
                    Smc1 = samplerDiag(1), PsiSmc1 = psiSamplerDiag(1);
  EXPECT_FALSE(Exact1.empty());
  for (unsigned Threads : {2u, 8u}) {
    EXPECT_EQ(exactDiag(Threads), Exact1) << Threads;
    EXPECT_EQ(psiDiag(Threads), Psi1) << Threads;
    EXPECT_EQ(samplerDiag(Threads), Smc1) << Threads;
    EXPECT_EQ(psiSamplerDiag(Threads), PsiSmc1) << Threads;
  }
}

// The full --txcache {on, off} x --threads {1, 2, 8} matrix: the
// posterior and every mass is bit-identical in all six combinations, and
// within each cache mode the transition-cache counters themselves are
// thread-count-invariant (lookups only ever see step-boundary snapshots).
TEST(ParallelDeterminism, TxCacheMatrixBitIdentical) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::gossip(4), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();

  auto run = [&](uint64_t CacheBytes, unsigned Threads) {
    ExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    Opts.TxCacheBytes = CacheBytes;
    ExactResult R = ExactEngine(Net->Spec, Opts).run();
    EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
    return R;
  };

  ExactResult Base = run(0, 1);
  ASSERT_TRUE(Base.concreteValue().has_value());
  EXPECT_EQ(Base.concreteValue()->toString(), "94/27");
  std::string BaseFp = fingerprint(Base, Net->Spec.Params);

  std::optional<ExactResult> CachedBase;
  for (uint64_t CacheBytes : {uint64_t(0), TxCacheDefaultBytes}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      ExactResult R = run(CacheBytes, Threads);
      EXPECT_EQ(fingerprint(R, Net->Spec.Params), BaseFp)
          << "txcache=" << CacheBytes << " threads=" << Threads;
      EXPECT_EQ(R.ConfigsExpanded, Base.ConfigsExpanded);
      EXPECT_EQ(R.MergeHits, Base.MergeHits);
      EXPECT_EQ(R.MergeAttempts, Base.MergeAttempts);
      if (!CacheBytes) {
        // Cache off: the counters stay untouched.
        EXPECT_EQ(R.TxHits, 0u);
        EXPECT_EQ(R.TxMisses, 0u);
      } else if (!CachedBase) {
        CachedBase = R;
        EXPECT_GT(R.TxHits, 0u); // gossip4 re-runs node states heavily.
        EXPECT_GT(R.TxMisses, 0u);
      } else {
        EXPECT_EQ(R.TxHits, CachedBase->TxHits) << Threads;
        EXPECT_EQ(R.TxMisses, CachedBase->TxMisses) << Threads;
        EXPECT_EQ(R.TxEvictions, CachedBase->TxEvictions) << Threads;
        EXPECT_EQ(R.TxBytes, CachedBase->TxBytes) << Threads;
      }
    }
  }
}

// DiagReport bytes across the same matrix: identical across thread counts
// within each cache mode (the tx_* diag series is part of the report, so
// the two modes legitimately differ from each other in those fields).
TEST(ParallelDeterminism, TxCacheDiagReportBitIdenticalAcrossThreads) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::paperExample(), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();

  auto diagOf = [&](uint64_t CacheBytes, unsigned Threads) {
    auto Ctx = std::make_shared<ObsContext>(false, false, true);
    ExactOptions Opts;
    Opts.Threads = Threads;
    Opts.ParallelThreshold = 1;
    Opts.TxCacheBytes = CacheBytes;
    Opts.Obs = Ctx;
    ExactResult R = ExactEngine(Net->Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok());
    return Ctx->diag()->report().toJson();
  };

  for (uint64_t CacheBytes : {uint64_t(0), TxCacheDefaultBytes}) {
    const std::string One = diagOf(CacheBytes, 1);
    EXPECT_FALSE(One.empty());
    for (unsigned Threads : {2u, 8u})
      EXPECT_EQ(diagOf(CacheBytes, Threads), One)
          << "txcache=" << CacheBytes << " threads=" << Threads;
  }
}

//===----------------------------------------------------------------------===//
// Profiler count determinism: threads x txcache x crash/resume
//===----------------------------------------------------------------------===//

std::shared_ptr<ObsContext> profObs() {
  return std::make_shared<ObsContext>(/*Trace=*/false, /*Metrics=*/false,
                                      /*Diag=*/false, /*Profile=*/true);
}

std::string profSnapPath() {
  static int Counter = 0;
  return ::testing::TempDir() + "bayonet_prof_" + std::to_string(::getpid()) +
         "_" + std::to_string(Counter++) + ".snap";
}

std::shared_ptr<Checkpointer> profCp(const std::string &Out,
                                     const std::string &Resume = "",
                                     const std::string &Fault = "") {
  CheckpointOptions CO;
  CO.OutPath = Out;
  CO.ResumePath = Resume;
  CO.Fault = Fault;
  CO.Every = 1;
  return std::make_shared<Checkpointer>(CO);
}

/// Projects a canonical-counts rendering onto its work columns (states,
/// execs, samples, merge attempts/hits), dropping rows that are all zero
/// there. The work projection is the tier of the fingerprint that is
/// additionally invariant across TxCache and intern on/off: cache hits
/// replay the per-statement counts recorded at compute time, and the
/// tx/intern columns only exist when the cache/arena does (cache hits
/// also skip canonicalization, so intern counts depend on the cache
/// setting — both pairs are dropped).
std::string workColumns(const std::string &Canon) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < Canon.size()) {
    size_t End = Canon.find('\n', Pos);
    if (End == std::string::npos)
      End = Canon.size();
    std::string Line = Canon.substr(Pos, End - Pos);
    Pos = End + 1;
    // stack|states|execs|samples|merge_attempts|merge_hits|tx_hits|
    // tx_misses|intern_hits|intern_misses
    size_t Cut = Line.size();
    for (int Drop = 0; Drop < 4 && Cut != std::string::npos; ++Drop)
      Cut = Line.rfind('|', Cut - 1);
    size_t Bar = Line.find('|');
    EXPECT_NE(Cut, std::string::npos) << Line;
    EXPECT_NE(Bar, std::string::npos) << Line;
    if (Cut == std::string::npos || Bar == std::string::npos || Bar >= Cut)
      continue;
    std::string Kept = Line.substr(0, Cut);
    bool AllZero = true;
    for (size_t I = Bar; I < Kept.size(); ++I)
      if (Kept[I] != '|' && Kept[I] != '0')
        AllZero = false;
    if (!AllZero)
      Out += Kept + "\n";
  }
  return Out;
}

/// True when any row of \p Canon has a nonzero tx_hits or tx_misses
/// column (the antepenultimate pair — intern_hits|intern_misses follow).
bool anyTxColumn(const std::string &Canon) {
  size_t Pos = 0;
  while (Pos < Canon.size()) {
    size_t End = Canon.find('\n', Pos);
    if (End == std::string::npos)
      End = Canon.size();
    std::string Line = Canon.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Tail = Line.size();
    for (int Drop = 0; Drop < 2 && Tail != std::string::npos; ++Drop)
      Tail = Line.rfind('|', Tail - 1);
    if (Tail == std::string::npos)
      continue;
    size_t Cut = Tail;
    for (int Drop = 0; Drop < 2 && Cut != std::string::npos; ++Drop)
      Cut = Line.rfind('|', Cut - 1);
    if (Cut == std::string::npos)
      continue;
    for (size_t I = Cut; I < Tail; ++I)
      if (Line[I] != '|' && Line[I] != '0')
        return true;
  }
  return false;
}

/// One exact-engine cell of the matrix: forced sharded path, profiling
/// context, optional checkpointer. Returns the canonical count rendering.
std::string exactProfileCanon(const LoadedNetwork &Net, unsigned Threads,
                              uint64_t TxCacheBytes,
                              std::shared_ptr<Checkpointer> Cp,
                              bool ExpectOk) {
  auto Ctx = profObs();
  ExactOptions Opts;
  Opts.Threads = Threads;
  Opts.ParallelThreshold = 1;
  Opts.TxCacheBytes = TxCacheBytes;
  Opts.Obs = Ctx;
  Opts.Checkpoint = std::move(Cp);
  ExactResult R = ExactEngine(Net.Spec, Opts).run();
  if (ExpectOk) {
    EXPECT_TRUE(R.Status.ok()) << R.Status.toString();
    EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
  } else {
    EXPECT_FALSE(R.Status.ok()) << "fault injection must abort the run";
  }
  return Ctx->profiler()->renderCanonicalCounts();
}

// The tentpole acceptance matrix: the profiler's deterministic count
// columns are byte-identical across worker-thread counts and across a
// checkpoint crash/resume within each TxCache setting, and the work
// columns are additionally byte-identical across TxCache on/off.
TEST(ParallelDeterminism, ProfileCountMatrixThreadsTxCacheCrashResume) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::paperExample(), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();

  std::string WorkRef;
  for (uint64_t Tx : {uint64_t(0), TxCacheDefaultBytes}) {
    std::string Ref;
    for (unsigned Threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("txcache=" + std::to_string(Tx) +
                   " threads=" + std::to_string(Threads));
      std::string Straight =
          exactProfileCanon(*Net, Threads, Tx, nullptr, /*ExpectOk=*/true);
      ASSERT_FALSE(Straight.empty());
      if (Ref.empty())
        Ref = Straight;
      else
        EXPECT_EQ(Straight, Ref);

      // Crash at the first snapshot write, resume from it: the restored
      // aggregate continues bit-identically to the uninterrupted run.
      std::string Path = profSnapPath();
      auto CrashCp = profCp(Path, "", "crash-at-checkpoint=1");
      exactProfileCanon(*Net, Threads, Tx, CrashCp, /*ExpectOk=*/false);
      EXPECT_TRUE(CrashCp->crashed());
      auto ResCp = profCp(Path, Path);
      std::string Resumed =
          exactProfileCanon(*Net, Threads, Tx, ResCp, /*ExpectOk=*/true);
      EXPECT_TRUE(ResCp->resumed());
      EXPECT_EQ(Resumed, Ref);
      std::remove(Path.c_str());
      std::remove((Path + ".prev").c_str());
    }
    EXPECT_NE(Ref.find("exact;step;expand|"), std::string::npos) << Ref;
    // Tx columns exist exactly when the cache does.
    EXPECT_EQ(anyTxColumn(Ref), Tx != 0) << Ref;
    std::string Work = workColumns(Ref);
    ASSERT_FALSE(Work.empty());
    if (WorkRef.empty())
      WorkRef = Work;
    else
      EXPECT_EQ(Work, WorkRef)
          << "work columns must not depend on the TxCache setting";
  }
}

// The seeded sampler charges PRNG draws and statement executions through
// per-lane shards with contiguous particle chunks; the folded counts are
// thread-count-invariant like every other deterministic column.
TEST(ParallelDeterminism, ProfileCountsSamplerThreadInvariant) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::reliabilityChain(2), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();

  auto canonOf = [&](unsigned Threads) {
    auto Ctx = profObs();
    SampleOptions Opts;
    Opts.Particles = 300;
    Opts.Seed = 42;
    Opts.Threads = Threads;
    Opts.Obs = Ctx;
    SampleResult R = Sampler(Net->Spec, Opts).run();
    EXPECT_TRUE(R.Status.ok()) << R.Status.toString();
    return Ctx->profiler()->renderCanonicalCounts();
  };
  std::string Base = canonOf(1);
  ASSERT_FALSE(Base.empty());
  EXPECT_NE(Base.find("smc;"), std::string::npos) << Base;
  for (unsigned Threads : {2u, 8u})
    EXPECT_EQ(canonOf(Threads), Base) << Threads;
}

// Regression: a failed uniformInt operand must contribute exactly the
// operand combination's probability mass to the error state. The old code
// pushed the failed operand outcome once per outcome of the other operand
// (multiplying its mass) and dropped the other operand's probability.
TEST(ParallelDeterminism, UniformIntFailurePropagatesOperandMass) {
  PsiProgram P;
  unsigned T = P.addVar("t");
  unsigned I = P.addVar("i");
  unsigned X = P.addVar("x");
  std::vector<PExprPtr> Elems;
  Elems.push_back(pInt(2));
  P.Body.push_back(sAssign(T, pTuple(std::move(Elems)))); // t = (2)
  P.Body.push_back(sAssign(I, pUniformInt(pInt(0), pInt(1))));
  // In the i == 1 branch t[i] is out of range, so the uniformInt's low
  // bound fails with probability 1 there; the high bound still splits into
  // two outcomes of 1/2 each. Correct error mass: 1/2 * (1/2 + 1/2) = 1/2.
  // The old accounting produced 1 (the Lo outcome pushed twice), making
  // total mass exceed 1.
  P.Body.push_back(sAssign(
      X, pUniformInt(pIndex(pVar(T), pVar(I)),
                     pUniformInt(pInt(3), pInt(4)))));
  P.Result = pInt(1);
  PsiExactResult R = PsiExact(P).run();
  EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1, 2));
  EXPECT_EQ(R.OkMass.concreteValue(), q(1, 2));
  EXPECT_EQ(*R.concreteValue(), q(1));
}

// Same accounting for failures detected inside uniformInt itself: an empty
// range reached with probability 1/2 contributes 1/2, not 1.
TEST(ParallelDeterminism, UniformIntEmptyRangeCarriesOperandProbability) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  // hi ~ uniform{1..4}; the range [3, hi] is empty for hi in {1, 2}.
  P.Body.push_back(
      sAssign(X, pUniformInt(pInt(3), pUniformInt(pInt(1), pInt(4)))));
  P.Result = pInt(1);
  PsiExactResult R = PsiExact(P).run();
  EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1, 2));
  EXPECT_EQ(R.OkMass.concreteValue(), q(1, 2));
}

// Indexing has the same two failure paths; pin the out-of-range one.
TEST(ParallelDeterminism, TupleIndexFailureCarriesOperandProbability) {
  PsiProgram P;
  unsigned T = P.addVar("t");
  unsigned X = P.addVar("x");
  std::vector<PExprPtr> Elems;
  Elems.push_back(pInt(5));
  Elems.push_back(pInt(6));
  P.Body.push_back(sAssign(T, pTuple(std::move(Elems)))); // t = (5, 6)
  // idx ~ uniform{1..2}: idx == 2 is out of range with probability 1/2.
  P.Body.push_back(
      sAssign(X, pIndex(pVar(T), pUniformInt(pInt(1), pInt(2)))));
  P.Result = pInt(1);
  PsiExactResult R = PsiExact(P).run();
  EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1, 2));
  EXPECT_EQ(R.OkMass.concreteValue(), q(1, 2));
}

} // namespace
