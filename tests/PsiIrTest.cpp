//===- tests/PsiIrTest.cpp - PSI IR engine unit tests ---------------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct tests of the PSI-style probabilistic IR and its exact and
/// sampling engines, independent of the Bayonet frontend.
///
//===----------------------------------------------------------------------===//

#include "psi/PsiExact.h"
#include "psi/PsiSampler.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

Rational q(int64_t N, int64_t D = 1) { return Rational(BigInt(N), BigInt(D)); }

TEST(PsiIrTest, ConstantProgram) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pInt(7)));
  P.Result = pVar(X);
  P.Kind = QueryKind::Expectation;
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(*R.concreteValue(), q(7));
}

TEST(PsiIrTest, FlipGivesBernoulli) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pFlip(pConst(q(1, 3)))));
  P.Result = pBin(BinOpKind::Eq, pVar(X), pInt(1));
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(*R.concreteValue(), q(1, 3));
}

TEST(PsiIrTest, UniformIntExpectation) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pUniformInt(pInt(1), pInt(6))));
  P.Result = pVar(X);
  P.Kind = QueryKind::Expectation;
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(*R.concreteValue(), q(7, 2));
}

TEST(PsiIrTest, ObserveConditions) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pUniformInt(pInt(1), pInt(6))));
  P.Body.push_back(sObserve(pBin(BinOpKind::Ge, pVar(X), pInt(3))));
  P.Result = pVar(X);
  P.Kind = QueryKind::Expectation;
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(*R.concreteValue(), q(9, 2));
  EXPECT_EQ(R.OkMass.concreteValue(), q(2, 3));
}

TEST(PsiIrTest, AssertMakesErrorMass) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pFlip(pConst(q(1, 4)))));
  P.Body.push_back(sAssert(pBin(BinOpKind::Eq, pVar(X), pInt(0))));
  P.Result = pVar(X);
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1, 4));
  EXPECT_EQ(R.OkMass.concreteValue(), q(3, 4));
}

TEST(PsiIrTest, QueuePushPopSemantics) {
  PsiProgram P;
  unsigned Q = P.addVar("q");
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(Q, pTuple({})));
  P.Body.push_back(sPushBack(Q, pInt(1), 2));
  P.Body.push_back(sPushBack(Q, pInt(2), 2));
  P.Body.push_back(sPushBack(Q, pInt(3), 2)); // dropped: at capacity
  P.Body.push_back(sPushFront(Q, pInt(9), 2)); // dropped: at capacity
  P.Body.push_back(sPopFront(Q, X));
  P.Result = pBin(BinOpKind::Add,
                  pBin(BinOpKind::Mul, pVar(X), pInt(10)),
                  pLen(pVar(Q)));
  P.Kind = QueryKind::Expectation;
  PsiExactResult R = PsiExact(P).run();
  // Head was 1, one element (the 2) remains: 1*10 + 1 = 11.
  EXPECT_EQ(*R.concreteValue(), q(11));
}

TEST(PsiIrTest, PopFrontOnEmptyIsError) {
  PsiProgram P;
  unsigned Q = P.addVar("q");
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(Q, pTuple({})));
  P.Body.push_back(sPopFront(Q, X));
  P.Result = pInt(0);
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
  EXPECT_TRUE(R.OkMass.isZero());
}

TEST(PsiIrTest, WhileLoopCountsDown) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  unsigned N = P.addVar("n");
  P.Body.push_back(sAssign(X, pInt(5)));
  std::vector<PStmtPtr> Body;
  Body.push_back(sAssign(X, pBin(BinOpKind::Sub, pVar(X), pInt(1))));
  Body.push_back(sAssign(N, pBin(BinOpKind::Add, pVar(N), pInt(1))));
  P.Body.push_back(
      sWhile(pBin(BinOpKind::Gt, pVar(X), pInt(0)), std::move(Body)));
  P.Result = pVar(N);
  P.Kind = QueryKind::Expectation;
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(*R.concreteValue(), q(5));
}

TEST(PsiIrTest, WhileFuelExhaustionIsError) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pInt(1)));
  std::vector<PStmtPtr> Body;
  Body.push_back(sAssign(X, pInt(1)));
  P.Body.push_back(
      sWhile(pBin(BinOpKind::Eq, pVar(X), pInt(1)), std::move(Body)));
  P.Result = pInt(0);
  PsiExactOptions Opts;
  Opts.WhileFuel = 50;
  PsiExactResult R = PsiExact(P, Opts).run();
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
}

TEST(PsiIrTest, RepeatMergesEnvironments) {
  // A geometric-style random walk: 20 steps of x += flip(1/2), merging
  // keeps the distribution linear in the step count.
  PsiProgram P;
  unsigned X = P.addVar("x");
  std::vector<PStmtPtr> Body;
  Body.push_back(
      sAssign(X, pBin(BinOpKind::Add, pVar(X), pFlip(pConst(q(1, 2))))));
  P.Body.push_back(sRepeat(20, std::move(Body)));
  P.Result = pVar(X);
  P.Kind = QueryKind::Expectation;
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(*R.concreteValue(), q(10));
  // 21 distinct values of x, not 2^20 paths.
  EXPECT_LE(R.MaxDistSize, 21u);
}

TEST(PsiIrTest, RepeatWithoutMergingBlowsUp) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  std::vector<PStmtPtr> Body;
  Body.push_back(
      sAssign(X, pBin(BinOpKind::Add, pVar(X), pFlip(pConst(q(1, 2))))));
  P.Body.push_back(sRepeat(12, std::move(Body)));
  P.Result = pVar(X);
  P.Kind = QueryKind::Expectation;
  PsiExactOptions Opts;
  Opts.MergeEnvs = false;
  PsiExactResult R = PsiExact(P, Opts).run();
  EXPECT_EQ(*R.concreteValue(), q(6));
  // Exponentially many paths without merging (2^11 at the last statement
  // entry, where the peak is measured).
  EXPECT_GE(R.MaxDistSize, 2048u);
}

TEST(PsiIrTest, TupleConstructionAndProjection) {
  PsiProgram P;
  unsigned T = P.addVar("t");
  std::vector<PExprPtr> Inner;
  Inner.push_back(pInt(6));
  std::vector<PExprPtr> Elems;
  Elems.push_back(pInt(4));
  Elems.push_back(pInt(5));
  Elems.push_back(pTuple(std::move(Inner)));
  P.Body.push_back(sAssign(T, pTuple(std::move(Elems))));
  P.Result = pBin(
      BinOpKind::Add, pTupleGet(pVar(T), 1),
      pTupleGet(pIndex(pVar(T), pInt(2)), 0));
  P.Kind = QueryKind::Expectation;
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(*R.concreteValue(), q(11));
}

TEST(PsiIrTest, IndexOutOfRangeIsError) {
  PsiProgram P;
  unsigned T = P.addVar("t");
  unsigned X = P.addVar("x");
  std::vector<PExprPtr> Elems;
  Elems.push_back(pInt(1));
  P.Body.push_back(sAssign(T, pTuple(std::move(Elems))));
  P.Body.push_back(sAssign(X, pIndex(pVar(T), pInt(5))));
  P.Result = pInt(0);
  PsiExactResult R = PsiExact(P).run();
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
}

TEST(PsiIrTest, SymbolicComparisonSplits) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  unsigned Param = P.Params.getOrAdd("P");
  P.ParamValues.resize(1);
  std::vector<PStmtPtr> Then, Else;
  Then.push_back(sAssign(X, pInt(1)));
  Else.push_back(sAssign(X, pInt(0)));
  P.Body.push_back(sIf(pBin(BinOpKind::Lt, pParam(Param), pInt(5)),
                       std::move(Then), std::move(Else)));
  P.Result = pBin(BinOpKind::Eq, pVar(X), pInt(1));
  PsiExactResult R = PsiExact(P).run();
  auto Cases = R.cases();
  ASSERT_EQ(Cases.size(), 3u); // P < 5, P == 5, P > 5 after partitioning.
  for (const ProbCase &C : Cases) {
    auto Model = C.Region.findModel(1);
    ASSERT_TRUE(Model.has_value());
    bool Lt = (*Model)[0] < Rational(5);
    EXPECT_EQ(C.Value, Lt ? q(1) : q(0));
  }
}

TEST(PsiIrTest, SamplerMatchesExact) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pUniformInt(pInt(0), pInt(9))));
  P.Body.push_back(sObserve(pBin(BinOpKind::Lt, pVar(X), pInt(5))));
  P.Result = pVar(X);
  P.Kind = QueryKind::Expectation;
  PsiExactResult Exact = PsiExact(P).run();
  PsiSampleOptions Opts;
  Opts.Particles = 40000;
  PsiSampleResult S = PsiSampler(P, Opts).run();
  EXPECT_EQ(*Exact.concreteValue(), q(2));
  EXPECT_NEAR(S.Value, 2.0, 0.05);
}

TEST(PsiIrTest, PrinterRoundsTrips) {
  PsiProgram P;
  unsigned X = P.addVar("x");
  P.Body.push_back(sAssign(X, pFlip(pConst(q(1, 2)))));
  P.Result = pVar(X);
  std::string Text = printPsiProgram(P);
  EXPECT_NE(Text.find("x = flip(1/2);"), std::string::npos);
  EXPECT_NE(Text.find("return x;"), std::string::npos);
}

} // namespace
