//===- tests/CheckerTest.cpp - Integrity checker tests --------------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "TestNetworks.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

/// Expects the source to fail checking with a message containing \p Needle.
void expectCheckError(std::string_view Src, const std::string &Needle) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_FALSE(Net.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  bool Found = false;
  for (const Diag &D : Diags.diags())
    if (D.Message.find(Needle) != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "expected a message containing '" << Needle
                     << "', got:\n"
                     << Diags.toString();
}

TEST(CheckerTest, PaperExampleChecks) {
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExample, Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  EXPECT_EQ(Net->Spec.Topo.numNodes(), 5u);
  EXPECT_EQ(Net->Spec.Topo.numLinks(), 5u);
  EXPECT_EQ(Net->Spec.QueueCapacity, 2);
  EXPECT_EQ(Net->Spec.NumSteps, 60);
  EXPECT_EQ(Net->Spec.Sched, SchedulerKind::Uniform);
  EXPECT_EQ(Net->Spec.Params.size(), 3u);
  EXPECT_FALSE(Net->Spec.hasFreeParams());
  ASSERT_NE(Net->Spec.Query, nullptr);
  EXPECT_EQ(Net->Spec.Query->Kind, QueryKind::Probability);
}

TEST(CheckerTest, SymbolicExampleHasFreeParams) {
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExampleSymbolic, Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  EXPECT_TRUE(Net->Spec.hasFreeParams());
}

TEST(CheckerTest, TopologyResolution) {
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExample, Diags);
  ASSERT_TRUE(Net.has_value());
  auto H0 = Net->Spec.nodeIdOf("H0");
  auto S0 = Net->Spec.nodeIdOf("S0");
  ASSERT_TRUE(H0 && S0);
  auto Peer = Net->Spec.Topo.peer(*H0, 1);
  ASSERT_TRUE(Peer.has_value());
  EXPECT_EQ(Peer->Node, *S0);
  EXPECT_EQ(Peer->Port, 3);
  // Unconnected port has no peer.
  EXPECT_FALSE(Net->Spec.Topo.peer(*H0, 2).has_value());
}

TEST(CheckerTest, RejectsUnknownNodeInLink) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (C,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                   "unknown node 'C'");
}

TEST(CheckerTest, RejectsDoublyConnectedPort) {
  expectCheckError(R"(
    topology { nodes { A, B, C } links {
      (A,pt1) <-> (B,pt1), (A,pt1) <-> (C,pt1), (B,pt2) <-> (C,pt2) } }
    programs { A -> a, B -> a, C -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                   "port already connected");
}

TEST(CheckerTest, RejectsUnlinkedNode) {
  expectCheckError(R"(
    topology { nodes { A, B, C } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a, C -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                   "not connected to any link");
}

TEST(CheckerTest, RejectsNodeWithoutProgram) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                   "has no program");
}

TEST(CheckerTest, RejectsMissingNumSteps) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    init { A }
    query probability(0 == 0);
  )",
                   "num_steps must be declared");
}

TEST(CheckerTest, RejectsDuplicateNumSteps) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    num_steps 6;
    query probability(0 == 0);
  )",
                   "more than once");
}

TEST(CheckerTest, RejectsNegativeQueueCapacity) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    init { A }
    queue_capacity -1;
    num_steps 5;
    query probability(0 == 0);
  )",
                   "non-negative");
}

TEST(CheckerTest, RejectsMissingQuery) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
  )",
                   "query must be declared");
}

TEST(CheckerTest, RejectsTwoQueries) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
    query probability(1 == 1);
  )",
                   "more than one query");
}

TEST(CheckerTest, RejectsAssignToUndeclaredVariable) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { y = 1; drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                   "only state variables");
}

TEST(CheckerTest, RejectsUnknownPacketField) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    packet_fields { dst }
    programs { A -> a, B -> a }
    def a(pkt, pt) { pkt.src = 1; drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                   "unknown packet field");
}

TEST(CheckerTest, RejectsWrongFieldBase) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    packet_fields { dst }
    programs { A -> a, B -> a }
    def a(packet, pt) { pkt.dst = 1; drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                   "not the packet parameter");
}

TEST(CheckerTest, RejectsRandomInQuery) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(flip(1/2) == 1);
  )",
                   "random draws are not allowed");
}

TEST(CheckerTest, RejectsUnknownStateVarInQuery) {
  expectCheckError(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) state x(0) { drop; }
    init { A }
    num_steps 5;
    query probability(y@A == 1);
  )",
                   "has no state variable");
}

TEST(CheckerTest, StarQueryResolvesAllNodes) {
  DiagEngine Diags;
  auto Net = loadNetwork(R"(
    topology { nodes { A, B, C } links {
      (A,pt1) <-> (B,pt1), (B,pt2) <-> (C,pt1), (C,pt2) <-> (A,pt2) } }
    programs { A -> a, B -> a, C -> a }
    def a(pkt, pt) state infected(0) { drop; }
    init { A }
    num_steps 5;
    query expectation(infected@*);
  )",
                        Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  const auto &SR = cast<StateRefExpr>(*Net->Spec.Query->Body);
  EXPECT_EQ(SR.Targets.size(), 3u);
}

TEST(CheckerTest, WarnsOnUnusedDef) {
  DiagEngine Diags;
  auto Net = loadNetwork(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> a }
    def a(pkt, pt) { drop; }
    def unused(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(0 == 0);
  )",
                        Diags);
  ASSERT_TRUE(Net.has_value());
  bool FoundWarning = false;
  for (const Diag &D : Diags.diags())
    if (D.Kind == DiagKind::Warning &&
        D.Message.find("not used") != std::string::npos)
      FoundWarning = true;
  EXPECT_TRUE(FoundWarning);
}

TEST(CheckerTest, BindAndUnbindParams) {
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExampleSymbolic, Diags);
  ASSERT_TRUE(Net.has_value());
  EXPECT_TRUE(Net->Spec.hasFreeParams());
  EXPECT_TRUE(bindParam(*Net, "COST_01", Rational(2)));
  EXPECT_TRUE(bindParam(*Net, "COST_02", Rational(1)));
  EXPECT_TRUE(bindParam(*Net, "COST_21", Rational(1)));
  EXPECT_FALSE(Net->Spec.hasFreeParams());
  EXPECT_FALSE(bindParam(*Net, "NOPE", Rational(1)));
  EXPECT_TRUE(unbindParam(*Net, "COST_01"));
  EXPECT_TRUE(Net->Spec.hasFreeParams());
}

} // namespace
