//===- tests/SnapshotTest.cpp - Durable checkpoint/restore ----------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/restore tests: a run killed at an injected crash point and
/// resumed from its last snapshot produces bit-identical posteriors,
/// diagnostics, metric fingerprints, and trace shape vs an uninterrupted
/// run — for all four engines, at 1/2/8 worker threads, with the TxCache
/// on or off. Corrupt and truncated snapshots are rejected by the
/// container checksum/length checks and recovered from the previous good
/// snapshot; a requested resume that cannot be satisfied is a hard error,
/// never a silent fresh start.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "psi/PsiExact.h"
#include "psi/PsiSampler.h"
#include "support/Snapshot.h"
#include "translate/Translator.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <unistd.h>

using namespace bayonet;

namespace {

LoadedNetwork load(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  return std::move(*Net);
}

PsiProgram translated(const LoadedNetwork &Net) {
  DiagEngine Diags;
  auto P = translateToPsi(Net.Spec, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.toString();
  return std::move(*P);
}

/// A unique snapshot path per call, under gtest's scratch directory.
std::string snapPath() {
  static int Counter = 0;
  return ::testing::TempDir() + "bayonet_snap_" + std::to_string(::getpid()) +
         "_" + std::to_string(Counter++) + ".snap";
}

std::shared_ptr<ObsContext> makeObs() {
  return std::make_shared<ObsContext>(/*Trace=*/true, /*Metrics=*/true,
                                      /*Diag=*/true);
}

std::shared_ptr<Checkpointer> makeCp(const std::string &Out,
                                     const std::string &Resume = "",
                                     const std::string &Fault = "",
                                     uint64_t Every = 1) {
  CheckpointOptions CO;
  CO.OutPath = Out;
  CO.ResumePath = Resume;
  CO.Fault = Fault;
  CO.Every = Every;
  return std::make_shared<Checkpointer>(CO);
}

/// Blanks the only nondeterministic trace fields (ts / dur, microseconds).
std::string stripTimestamps(std::string Json) {
  Json = std::regex_replace(Json, std::regex("\"ts\":[0-9]+"), "\"ts\":T");
  return std::regex_replace(Json, std::regex("\"dur\":[0-9]+"), "\"dur\":D");
}

/// Deterministic fingerprint of every metric except the wall-clock
/// histogram and the pool dispatch counters (batching is a scheduling
/// artifact, not a counted quantity of the inference).
std::string metricFingerprint(const ObsContext &Ctx) {
  std::string Out;
  for (const MetricValue &V : Ctx.metrics()->snapshot()) {
    if (V.Name == "bayonet_step_duration_ms" ||
        V.Name == "bayonet_pool_batches_total" ||
        V.Name == "bayonet_pool_tasks_total")
      continue;
    Out += V.Name + "=" + std::to_string(V.Value);
    for (uint64_t B : V.BucketCounts)
      Out += "," + std::to_string(B);
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), ";%.9g\n", V.Sum);
    Out += Buf;
  }
  return Out;
}

/// Everything the observability layer saw, rendered deterministically.
std::string obsFingerprint(const ObsContext &Ctx) {
  return stripTimestamps(Ctx.tracer()->renderChromeJson()) + "\n---\n" +
         metricFingerprint(Ctx) + "\n---\n" + Ctx.diag()->report().toJson();
}

/// Posterior fingerprints per engine (exact string renderings / bit
/// patterns, so equality means bit-identical).
std::string posterior(const ExactResult &R, const ParamTable &Params) {
  return R.QueryMass.toString(Params) + "|" + R.OkMass.toString(Params) +
         "|" + R.ErrorMass.toString(Params) + "|" +
         std::to_string(R.ConfigsExpanded) + "|" +
         std::to_string(R.MergeHits) + "|" + std::to_string(R.StepsUsed) +
         "|" + std::to_string(R.TerminalConfigs);
}

std::string posterior(const SampleResult &R) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%a|%a|%u|%u|%lld", R.Value, R.StdError,
                R.Survivors, R.Particles, (long long)R.StepsRun);
  return Buf;
}

std::string posterior(const PsiExactResult &R, const ParamTable &Params) {
  return R.QueryMass.toString(Params) + "|" + R.OkMass.toString(Params) +
         "|" + R.ErrorMass.toString(Params) + "|" +
         std::to_string(R.BranchesExpanded) + "|" +
         std::to_string(R.MergeHits);
}

std::string posterior(const PsiSampleResult &R) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%a|%a|%u|%u", R.Value, R.ErrorFraction,
                R.Survivors, R.ParticlesRun);
  return Buf;
}

/// Flips one byte at \p Offset (negative counts back from the end).
void corruptByte(const std::string &Path, long Offset) {
  std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.is_open()) << Path;
  std::ios_base::seekdir Dir = Offset < 0 ? std::ios::end : std::ios::beg;
  F.seekg(Offset, Dir);
  char C = 0;
  F.get(C);
  ASSERT_TRUE(F.good()) << Path << " offset " << Offset;
  F.seekp(Offset, Dir);
  F.put(static_cast<char>(C ^ 0x5a));
  ASSERT_TRUE(F.good()) << Path << " offset " << Offset;
}

void truncateFile(const std::string &Path, long Keep) {
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.is_open()) << Path;
  std::string All((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(All.size(), static_cast<size_t>(Keep));
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(All.data(), Keep);
}

} // namespace

//===----------------------------------------------------------------------===//
// Crash → resume determinism, all four engines × threads 1/2/8
//===----------------------------------------------------------------------===//

// The acceptance matrix for the exact engine: a run soft-crashed at the
// K-th snapshot write and resumed from it must reproduce the uninterrupted
// run bit for bit — posteriors, per-round diagnostics, metric totals, and
// trace shape — at every worker-lane count. The baseline checkpoints too
// (to its own throwaway path): snapshot writes carry their own obs
// (snapshot.write spans, bayonet_checkpoint_* counters), so the resumed
// run's checkpoint obs must also replay bit-identically.
TEST(Snapshot, CrashResumeExactMatrix) {
  LoadedNetwork Net = load(testnets::PaperExample);
  for (unsigned Threads : {1u, 2u, 8u}) {
    auto BaseObs = makeObs();
    std::string BasePath = snapPath();
    ExactOptions Base;
    Base.Threads = Threads;
    Base.Obs = BaseObs;
    Base.Budget = std::make_shared<BudgetTracker>();
    Base.Checkpoint = makeCp(BasePath);
    ExactResult Straight = ExactEngine(Net.Spec, Base).run();
    ASSERT_TRUE(Straight.Status.ok()) << Straight.Status.toString();
    std::remove(BasePath.c_str());
    std::remove((BasePath + ".prev").c_str());

    for (uint64_t K : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads) +
                   " K=" + std::to_string(K));
      std::string Path = snapPath();

      ExactOptions Crash;
      Crash.Threads = Threads;
      Crash.Obs = makeObs();
      Crash.Budget = std::make_shared<BudgetTracker>();
      Crash.Checkpoint =
          makeCp(Path, "", "crash-at-checkpoint=" + std::to_string(K));
      ExactResult Dead = ExactEngine(Net.Spec, Crash).run();
      EXPECT_FALSE(Dead.Status.ok());
      EXPECT_TRUE(Crash.Checkpoint->crashed());

      auto ResObs = makeObs();
      ExactOptions Res;
      Res.Threads = Threads;
      Res.Obs = ResObs;
      Res.Budget = std::make_shared<BudgetTracker>();
      Res.Checkpoint = makeCp(Path, Path);
      ExactResult Resumed = ExactEngine(Net.Spec, Res).run();
      ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();
      EXPECT_TRUE(Res.Checkpoint->resumed());

      EXPECT_EQ(posterior(Straight, Net.Spec.Params),
                posterior(Resumed, Net.Spec.Params));
      EXPECT_EQ(obsFingerprint(*BaseObs), obsFingerprint(*ResObs));
      EXPECT_EQ(Base.Budget->spendSnapshot().SchedSteps,
                Res.Budget->spendSnapshot().SchedSteps);
      std::remove(Path.c_str());
      std::remove((Path + ".prev").c_str());
    }
  }
}

// Same matrix with the transition cache disabled: the cache byte cap is
// part of the options fingerprint, and results must stay bit-identical
// with it off.
TEST(Snapshot, CrashResumeExactNoTxCache) {
  LoadedNetwork Net = load(testnets::PaperExample);
  auto BaseObs = makeObs();
  std::string BasePath = snapPath();
  ExactOptions Base;
  Base.TxCacheBytes = 0;
  Base.Obs = BaseObs;
  Base.Checkpoint = makeCp(BasePath);
  ExactResult Straight = ExactEngine(Net.Spec, Base).run();
  ASSERT_TRUE(Straight.Status.ok());
  std::remove(BasePath.c_str());
  std::remove((BasePath + ".prev").c_str());

  std::string Path = snapPath();
  ExactOptions Crash;
  Crash.TxCacheBytes = 0;
  Crash.Obs = makeObs();
  Crash.Checkpoint = makeCp(Path, "", "crash-at-checkpoint=3");
  ExactResult Dead = ExactEngine(Net.Spec, Crash).run();
  EXPECT_FALSE(Dead.Status.ok());

  auto ResObs = makeObs();
  ExactOptions Res;
  Res.TxCacheBytes = 0;
  Res.Obs = ResObs;
  Res.Checkpoint = makeCp(Path, Path);
  ExactResult Resumed = ExactEngine(Net.Spec, Res).run();
  ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();
  EXPECT_EQ(posterior(Straight, Net.Spec.Params),
            posterior(Resumed, Net.Spec.Params));
  EXPECT_EQ(obsFingerprint(*BaseObs), obsFingerprint(*ResObs));
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

TEST(Snapshot, CrashResumeSmcMatrix) {
  LoadedNetwork Net = load(testnets::PaperExample);
  for (unsigned Threads : {1u, 2u, 8u}) {
    SampleOptions Base;
    Base.Particles = 300;
    Base.Threads = Threads;
    auto BaseObs = makeObs();
    std::string BasePath = snapPath();
    Base.Obs = BaseObs;
    Base.Budget = std::make_shared<BudgetTracker>();
    Base.Checkpoint = makeCp(BasePath);
    SampleResult Straight = Sampler(Net.Spec, Base).run();
    ASSERT_TRUE(Straight.Status.ok()) << Straight.Status.toString();
    std::remove(BasePath.c_str());
    std::remove((BasePath + ".prev").c_str());

    for (uint64_t K : {1u, 5u}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads) +
                   " K=" + std::to_string(K));
      std::string Path = snapPath();

      SampleOptions Crash = Base;
      Crash.Obs = makeObs();
      Crash.Budget = std::make_shared<BudgetTracker>();
      Crash.Checkpoint =
          makeCp(Path, "", "crash-at-checkpoint=" + std::to_string(K));
      SampleResult Dead = Sampler(Net.Spec, Crash).run();
      EXPECT_FALSE(Dead.Status.ok());

      SampleOptions Res = Base;
      auto ResObs = makeObs();
      Res.Obs = ResObs;
      Res.Budget = std::make_shared<BudgetTracker>();
      Res.Checkpoint = makeCp(Path, Path);
      SampleResult Resumed = Sampler(Net.Spec, Res).run();
      ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();

      EXPECT_EQ(posterior(Straight), posterior(Resumed));
      EXPECT_EQ(obsFingerprint(*BaseObs), obsFingerprint(*ResObs));
      std::remove(Path.c_str());
      std::remove((Path + ".prev").c_str());
    }
  }
}

TEST(Snapshot, CrashResumePsiExactMatrix) {
  LoadedNetwork Net = load(testnets::PaperExample);
  PsiProgram P = translated(Net);
  for (unsigned Threads : {1u, 2u, 8u}) {
    PsiExactOptions Base;
    Base.Threads = Threads;
    auto BaseObs = makeObs();
    std::string BasePath = snapPath();
    Base.Obs = BaseObs;
    Base.Budget = std::make_shared<BudgetTracker>();
    Base.Checkpoint = makeCp(BasePath);
    PsiExactResult Straight = PsiExact(P, Base).run();
    ASSERT_TRUE(Straight.Status.ok()) << Straight.Status.toString();
    std::remove(BasePath.c_str());
    std::remove((BasePath + ".prev").c_str());

    for (uint64_t K : {1u, 3u}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads) +
                   " K=" + std::to_string(K));
      std::string Path = snapPath();

      PsiExactOptions Crash = Base;
      Crash.Obs = makeObs();
      Crash.Budget = std::make_shared<BudgetTracker>();
      Crash.Checkpoint =
          makeCp(Path, "", "crash-at-checkpoint=" + std::to_string(K));
      PsiExactResult Dead = PsiExact(P, Crash).run();
      EXPECT_FALSE(Dead.Status.ok());

      PsiExactOptions Res = Base;
      auto ResObs = makeObs();
      Res.Obs = ResObs;
      Res.Budget = std::make_shared<BudgetTracker>();
      Res.Checkpoint = makeCp(Path, Path);
      PsiExactResult Resumed = PsiExact(P, Res).run();
      ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();

      EXPECT_EQ(posterior(Straight, Net.Spec.Params),
                posterior(Resumed, Net.Spec.Params));
      EXPECT_EQ(obsFingerprint(*BaseObs), obsFingerprint(*ResObs));
      std::remove(Path.c_str());
      std::remove((Path + ".prev").c_str());
    }
  }
}

// PSI sampler: particles run in 256-wide chunks when a checkpointer is
// attached; >512 particles gives three chunk boundaries to crash at.
TEST(Snapshot, CrashResumePsiSamplerMatrix) {
  LoadedNetwork Net = load(testnets::CoinNetwork);
  PsiProgram P = translated(Net);
  for (unsigned Threads : {1u, 2u, 8u}) {
    PsiSampleOptions Base;
    Base.Particles = 600;
    Base.Threads = Threads;
    auto BaseObs = makeObs();
    std::string BasePath = snapPath();
    Base.Obs = BaseObs;
    Base.Budget = std::make_shared<BudgetTracker>();
    Base.Checkpoint = makeCp(BasePath);
    PsiSampleResult Straight = PsiSampler(P, Base).run();
    ASSERT_TRUE(Straight.Status.ok()) << Straight.Status.toString();
    std::remove(BasePath.c_str());
    std::remove((BasePath + ".prev").c_str());

    for (uint64_t K : {1u, 2u}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads) +
                   " K=" + std::to_string(K));
      std::string Path = snapPath();

      PsiSampleOptions Crash = Base;
      Crash.Obs = makeObs();
      Crash.Budget = std::make_shared<BudgetTracker>();
      Crash.Checkpoint =
          makeCp(Path, "", "crash-at-checkpoint=" + std::to_string(K));
      PsiSampleResult Dead = PsiSampler(P, Crash).run();
      EXPECT_FALSE(Dead.Status.ok());

      PsiSampleOptions Res = Base;
      auto ResObs = makeObs();
      Res.Obs = ResObs;
      Res.Budget = std::make_shared<BudgetTracker>();
      Res.Checkpoint = makeCp(Path, Path);
      PsiSampleResult Resumed = PsiSampler(P, Res).run();
      ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();

      EXPECT_EQ(posterior(Straight), posterior(Resumed));
      EXPECT_EQ(obsFingerprint(*BaseObs), obsFingerprint(*ResObs));
      std::remove(Path.c_str());
      std::remove((Path + ".prev").c_str());
    }
  }
}

// Checkpoint writing must be a pure observer: a straight-through run with
// snapshots enabled answers exactly like one without.
TEST(Snapshot, WritingPerturbsNothing) {
  LoadedNetwork Net = load(testnets::PaperExample);
  ExactResult Plain = ExactEngine(Net.Spec).run();
  std::string Path = snapPath();
  ExactOptions Opts;
  Opts.Checkpoint = makeCp(Path);
  ExactResult Snapped = ExactEngine(Net.Spec, Opts).run();
  ASSERT_TRUE(Snapped.Status.ok());
  EXPECT_GT(Opts.Checkpoint->writesDone(), 0u);
  EXPECT_EQ(posterior(Plain, Net.Spec.Params),
            posterior(Snapped, Net.Spec.Params));
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

//===----------------------------------------------------------------------===//
// Corruption, truncation, fault injection, and refusal to guess
//===----------------------------------------------------------------------===//

namespace {

/// Writes a full run's snapshot stream to Path (Every=1, ≥2 writes so
/// PATH.prev exists) and returns the straight-run posterior.
std::string writeSnapshots(const LoadedNetwork &Net, const std::string &Path) {
  ExactOptions Opts;
  Opts.Checkpoint = makeCp(Path);
  ExactResult R = ExactEngine(Net.Spec, Opts).run();
  EXPECT_TRUE(R.Status.ok());
  EXPECT_GE(Opts.Checkpoint->writesDone(), 2u);
  return posterior(R, Net.Spec.Params);
}

ExactResult resumeFrom(const LoadedNetwork &Net, const std::string &Path,
                       std::shared_ptr<Checkpointer> *CpOut = nullptr) {
  ExactOptions Opts;
  Opts.Checkpoint = makeCp("", Path);
  if (CpOut)
    *CpOut = Opts.Checkpoint;
  return ExactEngine(Net.Spec, Opts).run();
}

} // namespace

// A flipped payload byte fails the checksum; the loader falls back to
// PATH.prev and the resumed run still completes with the right answer.
TEST(Snapshot, CorruptPayloadFallsBackToPrev) {
  LoadedNetwork Net = load(testnets::PaperExample);
  std::string Path = snapPath();
  std::string Want = writeSnapshots(Net, Path);

  corruptByte(Path, -9); // Inside the payload tail.
  std::shared_ptr<Checkpointer> Cp;
  ExactResult R = resumeFrom(Net, Path, &Cp);
  ASSERT_TRUE(R.Status.ok()) << R.Status.toString();
  EXPECT_TRUE(Cp->resumed());
  EXPECT_EQ(Want, posterior(R, Net.Spec.Params));
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

// A torn (truncated) primary fails the length check and falls back too.
TEST(Snapshot, TruncatedFileFallsBackToPrev) {
  LoadedNetwork Net = load(testnets::PaperExample);
  std::string Path = snapPath();
  std::string Want = writeSnapshots(Net, Path);

  truncateFile(Path, 40); // Header + a few payload bytes.
  std::shared_ptr<Checkpointer> Cp;
  ExactResult R = resumeFrom(Net, Path, &Cp);
  ASSERT_TRUE(R.Status.ok()) << R.Status.toString();
  EXPECT_TRUE(Cp->resumed());
  EXPECT_EQ(Want, posterior(R, Net.Spec.Params));
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

// Both generations bad: the resume is a hard Invalid error — the engine
// never silently falls back to a fresh run.
TEST(Snapshot, BothGenerationsCorruptIsHardError) {
  LoadedNetwork Net = load(testnets::PaperExample);
  std::string Path = snapPath();
  writeSnapshots(Net, Path);

  corruptByte(Path, -9);
  corruptByte(Path + ".prev", -9);
  std::shared_ptr<Checkpointer> Cp;
  ExactResult R = resumeFrom(Net, Path, &Cp);
  EXPECT_FALSE(R.Status.ok());
  EXPECT_TRUE(Cp->resumeFailed());
  EXPECT_NE(Cp->resumeError().find("checksum"), std::string::npos)
      << Cp->resumeError();
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

TEST(Snapshot, MissingResumeFileIsHardError) {
  LoadedNetwork Net = load(testnets::PaperExample);
  std::shared_ptr<Checkpointer> Cp;
  ExactResult R =
      resumeFrom(Net, ::testing::TempDir() + "nonexistent.snap", &Cp);
  EXPECT_FALSE(R.Status.ok());
  EXPECT_TRUE(Cp->resumeFailed());
}

// A snapshot from a different network (or different engine options) is
// rejected by the spec/options fingerprint, not loaded into the wrong run.
TEST(Snapshot, SpecAndOptionsFingerprintMismatchRejected) {
  LoadedNetwork Net = load(testnets::PaperExample);
  std::string Path = snapPath();
  writeSnapshots(Net, Path);

  LoadedNetwork Other = load(testnets::TinyCongestion);
  ExactResult Wrong = resumeFrom(Other, Path);
  EXPECT_FALSE(Wrong.Status.ok());

  // Same network, different options fingerprint (cache off vs on).
  ExactOptions NoCache;
  NoCache.TxCacheBytes = 0;
  NoCache.Checkpoint = makeCp("", Path);
  ExactResult R = ExactEngine(Net.Spec, NoCache).run();
  EXPECT_FALSE(R.Status.ok());

  // A sampling engine refuses an exact-engine snapshot outright.
  SampleOptions SO;
  SO.Checkpoint = makeCp("", Path);
  SampleResult S = Sampler(Net.Spec, SO).run();
  EXPECT_FALSE(S.Status.ok());
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

// The injected write faults themselves: a torn Kth write leaves the
// previous generation as the best snapshot, a corrupt-byte write is
// rejected by the checksum — resuming recovers in both cases.
TEST(Snapshot, InjectedTornAndCorruptWritesRecover) {
  LoadedNetwork Net = load(testnets::PaperExample);
  ExactResult Straight = ExactEngine(Net.Spec).run();
  for (const char *Fault : {"torn-write=4", "corrupt-byte=4"}) {
    SCOPED_TRACE(Fault);
    std::string Path = snapPath();
    ExactOptions Opts;
    Opts.Checkpoint = makeCp(Path, "", Fault);
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    ASSERT_TRUE(R.Status.ok()); // Write faults don't kill the writer.

    // The damaged generation is silently skipped on load; whichever good
    // snapshot the rotation kept must resume to the right answer.
    std::shared_ptr<Checkpointer> Cp;
    ExactResult Resumed = resumeFrom(Net, Path, &Cp);
    ASSERT_TRUE(Resumed.Status.ok()) << Cp->resumeError();
    EXPECT_EQ(posterior(Straight, Net.Spec.Params),
              posterior(Resumed, Net.Spec.Params));
    std::remove(Path.c_str());
    std::remove((Path + ".prev").c_str());
  }
}

// Graceful cancellation writes a final snapshot at the last completed
// boundary; resuming it finishes the run bit-identically.
TEST(Snapshot, CancelledRunWritesResumableFinal) {
  LoadedNetwork Net = load(testnets::PaperExample);
  ExactResult Straight = ExactEngine(Net.Spec).run();

  std::string Path = snapPath();
  CancelToken Cancel;
  Cancel.requestCancel(); // Cancelled before the first boundary.
  ExactOptions Opts;
  Opts.Budget = std::make_shared<BudgetTracker>(BudgetLimits{}, Cancel);
  Opts.Checkpoint = makeCp(Path, "", "", /*Every=*/1000000);
  ExactResult Dead = ExactEngine(Net.Spec, Opts).run();
  EXPECT_FALSE(Dead.Status.ok());
  ASSERT_GE(Opts.Checkpoint->writesDone(), 1u);

  std::shared_ptr<Checkpointer> Cp;
  ExactResult Resumed = resumeFrom(Net, Path, &Cp);
  ASSERT_TRUE(Resumed.Status.ok()) << Cp->resumeError();
  EXPECT_EQ(posterior(Straight, Net.Spec.Params),
            posterior(Resumed, Net.Spec.Params));
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

//===----------------------------------------------------------------------===//
// runInference integration
//===----------------------------------------------------------------------===//

TEST(Snapshot, RunInferenceThreadsCheckpointIntoPrimary) {
  LoadedNetwork Net = load(testnets::PaperExample);
  InferenceOptions Plain;
  InferenceResult Straight = runInference(Net, Plain);
  ASSERT_TRUE(Straight.Status.ok());

  std::string Path = snapPath();
  InferenceOptions Crash;
  Crash.Checkpoint = makeCp(Path, "", "crash-at-checkpoint=3");
  InferenceResult Dead = runInference(Net, Crash);
  EXPECT_FALSE(Dead.Status.ok());

  InferenceOptions Res;
  Res.Checkpoint = makeCp(Path, Path);
  InferenceResult Resumed = runInference(Net, Res);
  ASSERT_TRUE(Resumed.Status.ok()) << Resumed.Status.toString();
  ASSERT_TRUE(Straight.Exact && Resumed.Exact);
  EXPECT_EQ(posterior(*Straight.Exact, Net.Spec.Params),
            posterior(*Resumed.Exact, Net.Spec.Params));
  EXPECT_EQ(Straight.Spent.StatesExpanded, Resumed.Spent.StatesExpanded);
  EXPECT_EQ(Straight.Spent.SchedSteps, Resumed.Spent.SchedSteps);
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

TEST(Snapshot, RunInferenceResumeFailureIsInvalid) {
  LoadedNetwork Net = load(testnets::PaperExample);
  InferenceOptions Opts;
  Opts.Checkpoint = makeCp("", ::testing::TempDir() + "missing.snap");
  InferenceResult R = runInference(Net, Opts);
  EXPECT_FALSE(R.Status.ok());
  EXPECT_NE(R.Status.toString().find("cannot resume"), std::string::npos)
      << R.Status.toString();
}
