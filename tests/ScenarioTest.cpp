//===- tests/ScenarioTest.cpp - Benchmark scenario tests ------------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the evaluation scenarios (Figure 11 and Section 5.5)
/// against the paper's reported values. These are the same networks the
/// bench binaries run; the tests pin the exact rationals.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "scenarios/Scenarios.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

ExactResult exactOf(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  if (!Net)
    return {};
  ExactResult R = ExactEngine(Net->Spec).run();
  EXPECT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;
  return R;
}

TEST(ScenarioTest, PaperExampleMatchesTestNetworkCopy) {
  ExactResult R = exactOf(scenarios::paperExample());
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(R.concreteValue()->toString(), "30378810105265/67706637778944");
}

TEST(ScenarioTest, CongestionSixNodesUniformBand) {
  // Table 1 row 3: the paper reports 0.4441 for its 6-node variant; our
  // Figure 11(a) encoding lands in the same band.
  ExactResult R = exactOf(scenarios::congestionChain(1, "uniform"));
  ASSERT_TRUE(R.concreteValue().has_value());
  double P = R.concreteValue()->toDouble();
  EXPECT_GT(P, 0.40);
  EXPECT_LT(P, 0.50);
  EXPECT_TRUE(R.ErrorMass.isZero());
}

TEST(ScenarioTest, CongestionDeterministicAlwaysCongests) {
  // Table 1 rows 2, 4, 5.
  for (unsigned Diamonds : {1u, 7u}) {
    ExactResult R =
        exactOf(scenarios::congestionChain(Diamonds, "deterministic"));
    ASSERT_TRUE(R.concreteValue().has_value());
    EXPECT_EQ(*R.concreteValue(), Rational(1)) << Diamonds << " diamonds";
  }
}

TEST(ScenarioTest, ReliabilityClosedForm) {
  // Table 1 rows 6-9: reliability is exactly (1999/2000)^Diamonds.
  Rational PerDiamond = Rational(1) - Rational(BigInt(1), BigInt(2000));
  Rational Expected(1);
  for (unsigned D = 1; D <= 7; ++D) {
    Expected *= PerDiamond;
    if (D != 1 && D != 3 && D != 7)
      continue;
    ExactResult R = exactOf(scenarios::reliabilityChain(D));
    ASSERT_TRUE(R.concreteValue().has_value()) << D;
    EXPECT_EQ(*R.concreteValue(), Expected) << D << " diamonds";
  }
}

TEST(ScenarioTest, ReliabilityThirtyNodesValue) {
  // (1999/2000)^7 ~ 0.9965 (Table 1 rows 8-9).
  ExactResult R = exactOf(scenarios::reliabilityChain(7));
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_NEAR(R.concreteValue()->toDouble(), 0.9965, 0.0001);
}

TEST(ScenarioTest, GossipFourNodesExact) {
  // Table 1 rows 10-11: 94/27 under both schedulers.
  for (const char *Sched : {"uniform", "deterministic"}) {
    ExactResult R = exactOf(scenarios::gossip(4, Sched));
    ASSERT_TRUE(R.concreteValue().has_value()) << Sched;
    EXPECT_EQ(R.concreteValue()->toString(), "94/27") << Sched;
  }
}

TEST(ScenarioTest, GossipLargeSmcMatchesPaperShape) {
  // Table 1 rows 12-13: ~16.0 infected for K=20, ~24.0 for K=30.
  DiagEngine D20, D30;
  auto Net20 = loadNetwork(scenarios::gossip(20), D20);
  auto Net30 = loadNetwork(scenarios::gossip(30), D30);
  ASSERT_TRUE(Net20 && Net30);
  SampleOptions Opts;
  Opts.Particles = 2000;
  SampleResult R20 = Sampler(Net20->Spec, Opts).run();
  SampleResult R30 = Sampler(Net30->Spec, Opts).run();
  EXPECT_NEAR(R20.Value, 16.0, 0.8);
  EXPECT_NEAR(R30.Value, 24.0, 1.0);
  // Shape: larger networks infect more nodes, roughly 0.8*K.
  EXPECT_GT(R30.Value, R20.Value);
}

TEST(ScenarioTest, BayesReliabilityObs13Posteriors) {
  // Section 5.5: observation (1,3) pins the strategy to random.
  ExactResult Rand = exactOf(scenarios::reliabilityBayes("13", "rand"));
  EXPECT_EQ(*Rand.concreteValue(), Rational(1));
  ExactResult S1 = exactOf(scenarios::reliabilityBayes("13", "detS1"));
  EXPECT_EQ(*S1.concreteValue(), Rational(0));
  ExactResult S2 = exactOf(scenarios::reliabilityBayes("13", "detS2"));
  EXPECT_EQ(*S2.concreteValue(), Rational(0));
}

TEST(ScenarioTest, BayesReliabilityObs123PosteriorsExact) {
  // Section 5.5: the paper's exact posterior after observing (1,2,3).
  ExactResult Rand = exactOf(scenarios::reliabilityBayes("123", "rand"));
  EXPECT_EQ(Rand.concreteValue()->toString(), "41922792469/95643630613");
  ExactResult S1 = exactOf(scenarios::reliabilityBayes("123", "detS1"));
  EXPECT_EQ(S1.concreteValue()->toString(), "26873856000/95643630613");
  ExactResult S2 = exactOf(scenarios::reliabilityBayes("123", "detS2"));
  EXPECT_EQ(S2.concreteValue()->toString(), "26846982144/95643630613");
  // The three posteriors sum to one.
  Rational Sum = *Rand.concreteValue() + *S1.concreteValue() +
                 *S2.concreteValue();
  EXPECT_EQ(Sum, Rational(1));
}

TEST(ScenarioTest, BayesLoadBalancingDirections) {
  // Section 5.5(a): sequence (S1,S0,S0,S1,H1) raises P(bad) to the paper's
  // 0.152; (H1,S0,S0,H1) lowers it below the 1/10 prior.
  ExactResult Up = exactOf(scenarios::loadBalancing("1001H"));
  ASSERT_TRUE(Up.concreteValue().has_value());
  EXPECT_NEAR(Up.concreteValue()->toDouble(), 0.152, 0.001);
  ExactResult Down = exactOf(scenarios::loadBalancing("H00H"));
  ASSERT_TRUE(Down.concreteValue().has_value());
  EXPECT_LT(Down.concreteValue()->toDouble(), 0.1);
}

TEST(ScenarioTest, GossipScalesWithoutErrorMass) {
  // The step bound chosen by the generator is always sufficient.
  for (unsigned K : {2u, 3u, 5u}) {
    ExactResult R = exactOf(scenarios::gossip(K));
    EXPECT_TRUE(R.ErrorMass.isZero()) << "K=" << K;
  }
}

TEST(ScenarioTest, GossipCompleteGraphTopology) {
  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::gossip(5), Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  EXPECT_EQ(Net->Spec.Topo.numNodes(), 5u);
  EXPECT_EQ(Net->Spec.Topo.numLinks(), 10u); // K_5 has C(5,2) links.
  // Every node has degree 4: ports 1..4 all connected.
  for (unsigned I = 0; I < 5; ++I)
    for (int P = 1; P <= 4; ++P)
      EXPECT_TRUE(Net->Spec.Topo.peer(I, P).has_value());
}

TEST(ScenarioTest, DiamondChainNodeCounts) {
  for (unsigned D : {1u, 3u, 7u}) {
    DiagEngine Diags;
    auto Net = loadNetwork(scenarios::congestionChain(D), Diags);
    ASSERT_TRUE(Net.has_value()) << Diags.toString();
    EXPECT_EQ(Net->Spec.Topo.numNodes(), 4 * D + 2);
  }
}

} // namespace
