//===- tests/IntrospectTest.cpp - Live introspection server ---------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live introspection tests: the seqlock ProgressBoard round-trips
/// publishes, the embedded HTTP server routes and rejects requests
/// correctly, the /metrics, /healthz, /statusz, and /trace endpoints
/// render live obs state, and — the headline guarantee — posteriors,
/// metric fingerprints, trace shape, and diagnostics are bit-identical
/// at 1 / 2 / 8 worker threads with the server running or absent.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "obs/Introspect.h"
#include "scenarios/Scenarios.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

#include <cstring>
#include <regex>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace bayonet;

namespace {

LoadedNetwork load(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  return std::move(*Net);
}

/// Minimal blocking HTTP/1.1 client: one request, reads to EOF (the
/// server always answers Connection: close).
struct HttpReply {
  int Status = 0;
  std::string ContentType;
  std::string Body;
  std::string Raw;
};

HttpReply httpGet(uint16_t Port, const std::string &Target,
                  const std::string &Method = "GET") {
  HttpReply Reply;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Reply;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return Reply;
  }
  std::string Req =
      Method + " " + Target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(Fd, Req.data(), Req.size(), 0);
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Reply.Raw.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  std::smatch M;
  if (std::regex_search(Reply.Raw, M, std::regex("^HTTP/1\\.1 ([0-9]{3})")))
    Reply.Status = std::stoi(M[1].str());
  if (std::regex_search(Reply.Raw, M,
                        std::regex("Content-Type: ([^\r\n]+)")))
    Reply.ContentType = M[1].str();
  size_t HdrEnd = Reply.Raw.find("\r\n\r\n");
  if (HdrEnd != std::string::npos)
    Reply.Body = Reply.Raw.substr(HdrEnd + 4);
  return Reply;
}

/// The Content-Length header value, or -1 when absent.
long contentLength(const HttpReply &Reply) {
  std::smatch M;
  if (std::regex_search(Reply.Raw, M,
                        std::regex("Content-Length: ([0-9]+)")))
    return std::stol(M[1].str());
  return -1;
}

std::string stripTimestamps(std::string Json) {
  Json = std::regex_replace(Json, std::regex("\"ts\":[0-9]+"), "\"ts\":T");
  return std::regex_replace(Json, std::regex("\"dur\":[0-9]+"), "\"dur\":D");
}

/// Deterministic fingerprint of every metric except the wall-clock
/// histogram and the process-global pool counters.
std::string metricFingerprint(const ObsContext &Ctx) {
  std::string Out;
  for (const MetricValue &V : Ctx.metrics()->snapshot()) {
    if (V.Name == "bayonet_step_duration_ms" ||
        V.Name == "bayonet_pool_batches_total" ||
        V.Name == "bayonet_pool_tasks_total")
      continue;
    Out += V.Name + "=" + std::to_string(V.Value);
    for (uint64_t B : V.BucketCounts)
      Out += "," + std::to_string(B);
    Out += ";";
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// ProgressBoard
//===----------------------------------------------------------------------===//

TEST(Introspect, PackTagRoundTrips) {
  // 8 chars pack little-endian; longer names truncate; the decoded form
  // is what /statusz prints.
  EXPECT_EQ(packTag("exact"), packTag("exact"));
  EXPECT_NE(packTag("exact"), packTag("smc"));
  EXPECT_EQ(packTag("verylongname"), packTag("verylong"));
  static_assert(packTag("step") != 0, "packTag is constexpr");
}

TEST(Introspect, BoardPublishReadAndCheckpointWords) {
  ProgressBoard B;
  ProgressSnapshot S;
  EXPECT_FALSE(B.read(S)) << "nothing published yet";

  ProgressUpdate U;
  U.EngineTag = packTag("exact");
  U.PhaseTag = packTag("step");
  U.Step = 41;
  U.Frontier = 17;
  U.StatesExpanded = 1234;
  U.MergeAttempts = 10;
  U.MergeHits = 4;
  U.EssFraction = 0.75;
  B.publish(U);
  ASSERT_TRUE(B.read(S));
  EXPECT_EQ(S.Engine, "exact");
  EXPECT_EQ(S.Phase, "step");
  EXPECT_EQ(S.Step, 41);
  EXPECT_EQ(S.Frontier, 17u);
  EXPECT_EQ(S.StatesExpanded, 1234u);
  EXPECT_DOUBLE_EQ(S.EssFraction, 0.75);
  EXPECT_EQ(S.Publishes, 1u);
  EXPECT_EQ(S.CheckpointWrites, 0u);

  // Checkpoint words are owned by noteCheckpointWrite and survive the
  // next full publish.
  B.noteCheckpointWrite(2048);
  U.Step = 42;
  B.publish(U);
  ASSERT_TRUE(B.read(S));
  EXPECT_EQ(S.Step, 42);
  EXPECT_EQ(S.CheckpointWrites, 1u);
  EXPECT_EQ(S.CheckpointBytes, 2048u);
}

//===----------------------------------------------------------------------===//
// HttpServer
//===----------------------------------------------------------------------===//

TEST(Introspect, HttpServerRoutesAndErrors) {
  HttpServer S;
  S.route("/hello", [](const HttpRequest &R) {
    HttpResponse Resp;
    Resp.Body = "hi " + R.query("name", "anon");
    return Resp;
  });
  std::string Err;
  ASSERT_TRUE(S.start("127.0.0.1:0", Err)) << Err;
  ASSERT_NE(S.port(), 0);

  HttpReply R = httpGet(S.port(), "/hello");
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "hi anon");
  R = httpGet(S.port(), "/hello?name=bob%20x");
  EXPECT_EQ(R.Body, "hi bob x") << "percent-decoding";
  EXPECT_EQ(httpGet(S.port(), "/nope").Status, 404);
  EXPECT_EQ(httpGet(S.port(), "/hello", "POST").Status, 405);

  S.stop();
  S.stop(); // Idempotent.
  EXPECT_EQ(httpGet(S.port(), "/hello").Status, 0)
      << "stopped server accepts nothing";
}

// HEAD is GET without the body (RFC 7231 §4.3.2): identical status and
// headers — including the Content-Length the GET body would have — and
// not a single body byte, on success and error paths alike.
TEST(Introspect, HeadSendsHeadersWithoutBody) {
  HttpServer S;
  S.route("/hello", [](const HttpRequest &R) {
    HttpResponse Resp;
    Resp.Body = "hi " + R.query("name", "anon");
    return Resp;
  });
  std::string Err;
  ASSERT_TRUE(S.start("127.0.0.1:0", Err)) << Err;

  HttpReply Get = httpGet(S.port(), "/hello");
  HttpReply Head = httpGet(S.port(), "/hello", "HEAD");
  EXPECT_EQ(Head.Status, 200);
  EXPECT_EQ(Head.Body, "");
  EXPECT_EQ(contentLength(Head), static_cast<long>(Get.Body.size()));
  EXPECT_EQ(Head.ContentType, Get.ContentType);

  // Handlers can see the method (e.g. to skip an expensive render).
  HttpReply Q = httpGet(S.port(), "/hello?name=bob", "HEAD");
  EXPECT_EQ(Q.Status, 200);
  EXPECT_EQ(Q.Body, "");
  EXPECT_EQ(contentLength(Q), static_cast<long>(std::string("hi bob").size()));

  // Error paths too: a HEAD of a missing route is a bodyless 404 whose
  // Content-Length still names the GET error text.
  HttpReply Get404 = httpGet(S.port(), "/nope");
  HttpReply Head404 = httpGet(S.port(), "/nope", "HEAD");
  EXPECT_EQ(Head404.Status, 404);
  EXPECT_EQ(Head404.Body, "");
  EXPECT_EQ(contentLength(Head404), static_cast<long>(Get404.Body.size()));

  // Anything else is still rejected.
  EXPECT_EQ(httpGet(S.port(), "/hello", "PUT").Status, 405);
  S.stop();
}

//===----------------------------------------------------------------------===//
// IntrospectServer endpoints
//===----------------------------------------------------------------------===//

TEST(Introspect, EndpointsServeObsState) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto Ctx = std::make_shared<ObsContext>(/*Trace=*/true, /*Metrics=*/true,
                                          /*Diag=*/true);
  InferenceOptions Opts;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  ASSERT_TRUE(R.Status.ok());

  IntrospectServer Server(Ctx);
  std::string Err;
  ASSERT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;

  HttpReply Metrics = httpGet(Server.port(), "/metrics");
  EXPECT_EQ(Metrics.Status, 200);
  EXPECT_EQ(Metrics.ContentType, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(Metrics.Body.find("# HELP bayonet_states_expanded_total"),
            std::string::npos);
  EXPECT_NE(Metrics.Body.find("# TYPE bayonet_checkpoint_writes_total "
                              "counter"),
            std::string::npos);

  HttpReply Statusz = httpGet(Server.port(), "/statusz");
  EXPECT_EQ(Statusz.Status, 200);
  EXPECT_EQ(Statusz.ContentType, "application/json; charset=utf-8");
  EXPECT_NE(Statusz.Body.find("\"engine\":\"exact\""), std::string::npos);
  EXPECT_NE(Statusz.Body.find("\"phase\":\"finished\""), std::string::npos);
  EXPECT_NE(Statusz.Body.find("\"published\":true"), std::string::npos);

  HttpReply Healthz = httpGet(Server.port(), "/healthz");
  EXPECT_EQ(Healthz.Status, 200);
  EXPECT_NE(Healthz.Body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(Healthz.Body.find("\"budget_tripped\":false"),
            std::string::npos);

  HttpReply Trace = httpGet(Server.port(), "/trace?last=4");
  EXPECT_EQ(Trace.Status, 200);
  EXPECT_NE(Trace.Body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Trace.Body.find("\"ph\":\"X\""), std::string::npos);

  EXPECT_EQ(httpGet(Server.port(), "/trace?last=bogus").Status, 400);
  EXPECT_EQ(httpGet(Server.port(), "/absent").Status, 404);

  HttpReply Index = httpGet(Server.port(), "/");
  EXPECT_EQ(Index.Status, 200);
  EXPECT_NE(Index.Body.find("/metrics"), std::string::npos);
}

// Every endpoint — success or error — answers with a Content-Length that
// matches its body exactly, so HEAD and keep-alive-less clients can trust
// the framing.
TEST(Introspect, ContentLengthMatchesBodyOnEveryEndpoint) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  auto Ctx = std::make_shared<ObsContext>(/*Trace=*/true, /*Metrics=*/true,
                                          /*Diag=*/true, /*Profile=*/true);
  InferenceOptions Opts;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  ASSERT_TRUE(R.Status.ok());

  IntrospectServer Server(Ctx);
  std::string Err;
  ASSERT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;

  for (const char *Target :
       {"/", "/metrics", "/statusz", "/healthz", "/trace", "/profile",
        "/trace?last=bogus", "/absent"}) {
    SCOPED_TRACE(Target);
    HttpReply Reply = httpGet(Server.port(), Target);
    ASSERT_NE(Reply.Status, 0);
    EXPECT_EQ(contentLength(Reply), static_cast<long>(Reply.Body.size()));
    EXPECT_FALSE(Reply.Body.empty());

    HttpReply Head = httpGet(Server.port(), Target, "HEAD");
    EXPECT_EQ(Head.Status, Reply.Status);
    EXPECT_EQ(Head.Body, "");
    // Dynamic bodies (uptime digits on /healthz, /statusz) may grow a byte
    // between requests, so bracket the HEAD with a second GET and accept
    // either observed size.
    HttpReply Again = httpGet(Server.port(), Target);
    long HeadLen = contentLength(Head);
    EXPECT_GT(HeadLen, 0);
    EXPECT_TRUE(HeadLen == static_cast<long>(Reply.Body.size()) ||
                HeadLen == static_cast<long>(Again.Body.size()))
        << "HEAD Content-Length " << HeadLen << " matches neither GET body ("
        << Reply.Body.size() << ", " << Again.Body.size() << ")";
  }
}

// The /profile endpoint's three states: profiling off for the run, on but
// nothing published yet, and live top-frame JSON after engine boundaries.
TEST(Introspect, ProfileEndpointLifecycle) {
  // Profiling disabled: an explanatory 503, not an empty 200.
  {
    auto Ctx = std::make_shared<ObsContext>(false, true);
    IntrospectServer Server(Ctx);
    std::string Err;
    ASSERT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;
    HttpReply Reply = httpGet(Server.port(), "/profile");
    EXPECT_EQ(Reply.Status, 503);
    EXPECT_NE(Reply.Body.find("profiling disabled"), std::string::npos);
  }

  auto Ctx = std::make_shared<ObsContext>(false, true, false,
                                          /*Profile=*/true);
  IntrospectServer Server(Ctx);
  std::string Err;
  ASSERT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;

  // Enabled but nothing published yet.
  HttpReply Early = httpGet(Server.port(), "/profile");
  EXPECT_EQ(Early.Status, 503);
  EXPECT_EQ(Early.ContentType, "application/json; charset=utf-8");
  EXPECT_NE(Early.Body.find("\"published\":false"), std::string::npos);

  // After a run the board holds the top frames by self work.
  LoadedNetwork Net = load(scenarios::gossip(3));
  InferenceOptions Opts;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  ASSERT_TRUE(R.Status.ok());
  EXPECT_GT(Ctx->profiler()->board().publishes(), 0u);

  HttpReply Live = httpGet(Server.port(), "/profile");
  EXPECT_EQ(Live.Status, 200);
  EXPECT_EQ(Live.ContentType, "application/json; charset=utf-8");
  EXPECT_NE(Live.Body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(Live.Body.find("\"top\":[{\"stack\":"), std::string::npos);
  EXPECT_NE(Live.Body.find("exact"), std::string::npos);
}

TEST(Introspect, StatuszTracksAdvancingSteps) {
  auto Ctx = std::make_shared<ObsContext>(false, true);
  IntrospectServer Server(Ctx);
  std::string Err;
  ASSERT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;

  ProgressUpdate U;
  U.EngineTag = packTag("exact");
  U.PhaseTag = packTag("step");
  U.Step = 3;
  Ctx->progress().publish(U);
  EXPECT_NE(httpGet(Server.port(), "/statusz").Body.find("\"step\":3"),
            std::string::npos);

  U.Step = 7;
  Ctx->progress().publish(U);
  std::string Body = httpGet(Server.port(), "/statusz").Body;
  EXPECT_NE(Body.find("\"step\":7"), std::string::npos);
  EXPECT_EQ(Body.find("\"step\":3"), std::string::npos)
      << "statusz must reflect the latest publish";
}

TEST(Introspect, HealthzReportsBudgetTripAsDegraded) {
  LoadedNetwork Net = load(scenarios::gossip(4));
  auto Ctx = std::make_shared<ObsContext>(true, true);
  InferenceOptions Opts;
  Opts.Limits.MaxStates = 50;
  Opts.Obs = Ctx;
  InferenceResult R = runInference(Net, Opts);
  EXPECT_EQ(R.Status.Code, StatusCode::BudgetExceeded);

  IntrospectServer Server(Ctx);
  std::string Err;
  ASSERT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;
  HttpReply Healthz = httpGet(Server.port(), "/healthz");
  EXPECT_EQ(Healthz.Status, 503);
  EXPECT_NE(Healthz.Body.find("\"budget_tripped\":true"), std::string::npos);
  EXPECT_NE(Healthz.Body.find("\"status\":\"degraded\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Determinism: server on/off x threads 1/2/8
//===----------------------------------------------------------------------===//

// The acceptance matrix: running with the introspection server up (but
// unscraped) must leave posterior, metric fingerprint, trace shape, and
// the diagnostics report bit-identical to running without it, at every
// thread count — publication is a fixed block of relaxed stores at serial
// boundaries, never a branch in engine logic.
TEST(Introspect, ServerOnOffThreadMatrixBitIdentical) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  struct RunOut {
    std::string Posterior, Metrics, Trace, Diag;
  };
  auto runCell = [&](unsigned Threads, bool Serve) {
    auto Ctx = std::make_shared<ObsContext>(true, true, true);
    std::unique_ptr<IntrospectServer> Server;
    if (Serve) {
      Server = std::make_unique<IntrospectServer>(Ctx);
      std::string Err;
      EXPECT_TRUE(Server->start("127.0.0.1:0", Err)) << Err;
    }
    InferenceOptions Opts;
    Opts.Threads = Threads;
    Opts.Obs = Ctx;
    InferenceResult R = runInference(Net, Opts);
    EXPECT_TRUE(R.Status.ok());
    RunOut Out;
    Out.Posterior = R.Exact ? R.Exact->QueryMass.toString(Net.Spec.Params) +
                                  "|" + R.Exact->OkMass.toString(Net.Spec.Params)
                            : std::string("<none>");
    Out.Metrics = metricFingerprint(*Ctx);
    Out.Trace = stripTimestamps(Ctx->tracer()->renderChromeJson());
    Out.Diag = Ctx->diag()->report().toJson();
    return Out;
  };
  RunOut Ref = runCell(1, false);
  for (unsigned Threads : {1u, 2u, 8u}) {
    for (bool Serve : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads) +
                   " serve=" + std::to_string(Serve));
      RunOut Cell = runCell(Threads, Serve);
      EXPECT_EQ(Ref.Posterior, Cell.Posterior);
      EXPECT_EQ(Ref.Metrics, Cell.Metrics);
      EXPECT_EQ(Ref.Trace, Cell.Trace);
      EXPECT_EQ(Ref.Diag, Cell.Diag);
    }
  }
}
