//===- tests/ExactEngineTest.cpp - Exact inference tests ------------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "TestNetworks.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

Rational q(int64_t N, int64_t D = 1) { return Rational(BigInt(N), BigInt(D)); }

ExactResult runExact(std::string_view Src, ExactOptions Opts = {}) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  if (!Net)
    return {};
  return ExactEngine(Net->Spec, Opts).run();
}

TEST(ExactEngineTest, PingDelivers) {
  ExactResult R = runExact(testnets::PingNetwork);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(1));
  EXPECT_TRUE(R.ErrorMass.isZero());
  EXPECT_EQ(R.OkMass.concreteValue(), q(1));
}

TEST(ExactEngineTest, CoinThird) {
  ExactResult R = runExact(testnets::CoinNetwork);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(1, 3));
}

TEST(ExactEngineTest, DieExpectation) {
  ExactResult R = runExact(testnets::DieNetwork);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(7, 2));
  EXPECT_EQ(R.Kind, QueryKind::Expectation);
}

TEST(ExactEngineTest, ObservedDieConditions) {
  // E[die | die >= 3] = (3+4+5+6)/4 = 9/2; surviving mass Z = 2/3.
  ExactResult R = runExact(testnets::ObservedDieNetwork);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(9, 2));
  EXPECT_EQ(R.OkMass.concreteValue(), q(2, 3));
}

TEST(ExactEngineTest, AssertSplitsErrorMass) {
  // E[die | die < 6] = 3 with 1/6 error mass.
  ExactResult R = runExact(testnets::AssertDieNetwork);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(3));
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1, 6));
  EXPECT_EQ(R.OkMass.concreteValue(), q(5, 6));
  ASSERT_TRUE(R.errorProbability().has_value());
  EXPECT_EQ(*R.errorProbability(), q(1, 6));
}

TEST(ExactEngineTest, LossyDelivery) {
  ExactResult R = runExact(testnets::LossyNetwork);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(3, 4));
}

TEST(ExactEngineTest, TinyCongestionCapacityOne) {
  // With capacity 1 the `new` in A's program is a no-op while the seed
  // packet occupies the queue, so only one packet ever reaches B:
  // P(got@B < 2) = 1 deterministically.
  ExactResult R = runExact(testnets::TinyCongestion);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(1));
}

TEST(ExactEngineTest, TinyCongestionCapacityTwo) {
  // With capacity 2 both packets fit and arrive: P(got@B < 2) = 0.
  std::string Src = testnets::TinyCongestion;
  size_t Pos = Src.find("queue_capacity 1;");
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, 17, "queue_capacity 2;");
  ExactResult R = runExact(Src);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(0));
}

TEST(ExactEngineTest, TerminalMassSumsToOne) {
  // Without observes/asserts, OkMass + ErrorMass == 1 exactly.
  for (const char *Src :
       {testnets::PingNetwork, testnets::CoinNetwork, testnets::DieNetwork,
        testnets::LossyNetwork, testnets::PaperExample}) {
    ExactResult R = runExact(Src);
    Rational Total = R.OkMass.concreteValue() + R.ErrorMass.concreteValue();
    EXPECT_EQ(Total, q(1)) << "source:\n" << Src;
  }
}

TEST(ExactEngineTest, PaperExampleCongestionBand) {
  // Section 2.2: probability of congestion with equal-cost routes under the
  // uniform scheduler. The paper reports 30378810105265/67706637778944
  // (~0.4487); the exact value depends on the scheduler's step granularity,
  // so assert the band and record the value in EXPERIMENTS.md.
  ExactResult R = runExact(testnets::PaperExample);
  ASSERT_TRUE(R.concreteValue().has_value()) << R.UnsupportedReason;
  double P = R.concreteValue()->toDouble();
  EXPECT_GT(P, 0.30) << R.concreteValue()->toString();
  EXPECT_LT(P, 0.60) << R.concreteValue()->toString();
  EXPECT_TRUE(R.ErrorMass.isZero())
      << "num_steps bound too small: " << R.ErrorMass.toString(ParamTable());
}

TEST(ExactEngineTest, PaperExampleMatchesPaperRationalExactly) {
  // Section 2.2 reports probability(pkt_cnt@H1 < 3) =
  // 30378810105265/67706637778944; our engine reproduces it bit for bit.
  ExactResult R = runExact(testnets::PaperExample);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(R.concreteValue()->toString(), "30378810105265/67706637778944");
}

TEST(ExactEngineTest, PaperExampleDeterministicSchedulerCongests) {
  // Table 1 rows 2/4: with the deterministic scheduler congestion is
  // certain (probability 1.0) — H0 bursts all three packets before any
  // forwarding happens, overflowing its capacity-2 output queue.
  std::string Src = testnets::PaperExample;
  size_t Pos = Src.find("scheduler uniform;");
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, 18, "scheduler deterministic;");
  ExactResult R = runExact(Src);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(1));
}

TEST(ExactEngineTest, PaperExampleFairRoundRobinAvoidsCongestion) {
  // Under the fair rotor scheduler every packet is forwarded before queues
  // fill, so congestion never happens — schedulers matter (Section 5.1).
  std::string Src = testnets::PaperExample;
  size_t Pos = Src.find("scheduler uniform;");
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, 18, "scheduler roundrobin;");
  ExactResult R = runExact(Src);
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(0));
}

TEST(ExactEngineTest, MergeAblationAgrees) {
  // Disabling state merging must not change results, only cost.
  ExactOptions NoMerge;
  NoMerge.MergeStates = false;
  for (const char *Src : {testnets::CoinNetwork, testnets::LossyNetwork,
                          testnets::TinyCongestion}) {
    ExactResult Merged = runExact(Src);
    ExactResult Plain = runExact(Src, NoMerge);
    EXPECT_EQ(*Merged.concreteValue(), *Plain.concreteValue());
  }
}

TEST(ExactEngineTest, InitialDistributionRandomInits) {
  DiagEngine Diags;
  auto Net = loadNetwork(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> b }
    def a(pkt, pt) state prior(flip(1/10)) { drop; }
    def b(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query probability(prior@A == 1);
  )",
                        Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  ExactEngine Engine(Net->Spec);
  auto Init = Engine.initialDistribution();
  EXPECT_EQ(Init.size(), 2u);
  ExactResult R = Engine.run();
  EXPECT_EQ(*R.concreteValue(), q(1, 10));
}

TEST(ExactEngineTest, StepBoundProducesErrorMass) {
  // A bound too small to finish leaves error mass.
  std::string Src = testnets::PingNetwork;
  size_t Pos = Src.find("num_steps 10;");
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, 13, "num_steps 1;");
  ExactResult R = runExact(Src);
  EXPECT_FALSE(R.ErrorMass.isZero());
}

TEST(ExactEngineTest, CollectTerminalsDistribution) {
  ExactOptions Opts;
  Opts.CollectTerminals = true;
  ExactResult R = runExact(testnets::CoinNetwork, Opts);
  // Two terminal configurations: x == 0 and x == 1.
  ASSERT_EQ(R.Terminals.size(), 2u);
  Rational Sum;
  for (auto &[C, W] : R.Terminals)
    Sum += W.concreteValue();
  EXPECT_EQ(Sum, q(1));
}

TEST(ExactEngineTest, WhileLoopExact) {
  // A geometric-style bounded loop: count halvings of 16 down to 1.
  ExactResult R = runExact(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> b }
    def a(pkt, pt) state x(16), steps(0) {
      while x > 1 {
        x = x / 2;
        steps = steps + 1;
      }
      drop;
    }
    def b(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query expectation(steps@A);
  )");
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(*R.concreteValue(), q(4));
}

TEST(ExactEngineTest, DivisionByZeroIsErrorMass) {
  ExactResult R = runExact(R"(
    topology { nodes { A, B } links { (A,pt1) <-> (B,pt1) } }
    programs { A -> a, B -> b }
    def a(pkt, pt) state x(0), y(1) {
      x = y / x;
      drop;
    }
    def b(pkt, pt) { drop; }
    init { A }
    num_steps 5;
    query expectation(x@A);
  )");
  EXPECT_EQ(R.ErrorMass.concreteValue(), q(1));
  EXPECT_TRUE(R.OkMass.isZero());
}

} // namespace
