//===- tests/InternTest.cpp - Hash-consing arena unit tests ---------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for support/Intern.h: content dedup across lanes, the
/// deterministic hash-sorted publication order, FIFO eviction under the
/// byte cap (with id retirement), the snapshot re-intern round-trip, and
/// the concurrent probe/stage protocol the lanes rely on (exercised with
/// real threads so a TSan build checks the synchronization claims).
///
//===----------------------------------------------------------------------===//

#include "support/Intern.h"
#include "support/Snapshot.h"

#include <gtest/gtest.h>

#include <thread>

using namespace bayonet;

namespace {

using BlockPtr = InternArena::BlockPtr;

/// A block whose content is determined by \p Tag (distinct tags give
/// distinct, independently-hashed contents).
BlockPtr makeBlock(int64_t Tag) {
  NodeConfig C;
  C.State.push_back(Value(Rational(Tag)));
  C.State.push_back(Value(Rational(Tag * 7 + 1)));
  C.QIn = PacketQueue(2);
  C.QOut = PacketQueue(2);
  return std::make_shared<NodeBlock>(std::move(C));
}

NetConfig configOf(const BlockPtr &B, int64_t SchedState = 0) {
  NetConfig C;
  C.Nodes.resize(1);
  C.Nodes.setBlock(0, B);
  C.SchedState = SchedState;
  return C;
}

TEST(Intern, DedupAcrossLanesAndCounterDrain) {
  InternArena Arena(1 << 20, /*Lanes=*/2);

  // Two lanes stage equal content independently: both miss (the published
  // table is empty), each keeps its own staged block until the boundary.
  BlockPtr A = Arena.canon(0, makeBlock(1));
  BlockPtr B = Arena.canon(1, makeBlock(1));
  ASSERT_TRUE(A && B);
  EXPECT_TRUE(A->config() == B->config());

  // Within-lane dedup: an equal block staged again in the same lane comes
  // back as the lane's earlier staged instance.
  BlockPtr A2 = Arena.canon(0, makeBlock(1));
  EXPECT_EQ(A.get(), A2.get());

  InternArena::PublishStats S = Arena.publishStaged();
  EXPECT_EQ(S.Inserted, 1u); // One content class across both lanes.
  EXPECT_EQ(Arena.size(), 1u);

  // Publication stamped every staged duplicate with the winner's class id:
  // equal non-zero ids certify structural equality without a re-walk.
  EXPECT_NE(A->internId(), 0u);
  EXPECT_EQ(A->internId(), B->internId());

  // A fresh equal block now hits and canonicalizes to the published
  // instance (pointer identity is the whole point of interning).
  BlockPtr C = Arena.canon(0, makeBlock(1));
  EXPECT_TRUE(C.get() == A.get() || C.get() == B.get());

  uint64_t Hits = 0, Misses = 0;
  Arena.drainCounters(Hits, Misses);
  EXPECT_EQ(Hits, 1u);   // Only the post-publication probe hit.
  EXPECT_EQ(Misses, 3u); // The three pre-publication canon() calls.

  // drainCounters drains: a second drain reads zeros.
  Hits = Misses = 0;
  Arena.drainCounters(Hits, Misses);
  EXPECT_EQ(Hits, 0u);
  EXPECT_EQ(Misses, 0u);
}

// Intern ids are a pure function of the published content set, not of
// which lane staged what: two arenas fed the same contents under opposite
// lane assignments assign identical ids.
TEST(Intern, PublicationOrderIndependentOfLaneAssignment) {
  constexpr int N = 16;
  InternArena ArenaA(1 << 20, 2), ArenaB(1 << 20, 2);
  for (int I = 0; I < N; ++I) {
    ArenaA.canon(I % 2, makeBlock(I));
    ArenaB.canon((I + 1) % 2, makeBlock(N - 1 - I)); // Swapped + reversed.
  }
  ArenaA.publishStaged();
  ArenaB.publishStaged();
  ASSERT_EQ(ArenaA.size(), static_cast<size_t>(N));
  ASSERT_EQ(ArenaB.size(), static_cast<size_t>(N));
  for (int I = 0; I < N; ++I) {
    uint64_t IdA = ArenaA.canon(0, makeBlock(I))->internId();
    uint64_t IdB = ArenaB.canon(0, makeBlock(I))->internId();
    EXPECT_NE(IdA, 0u);
    EXPECT_EQ(IdA, IdB) << "content " << I;
  }
}

TEST(Intern, EvictionUnderByteCapRetiresIds) {
  // A cap small enough that a handful of blocks overflows it.
  InternArena Arena(/*ByteCap=*/256, /*Lanes=*/1);
  BlockPtr First = Arena.canon(0, makeBlock(0));
  for (int I = 1; I < 8; ++I)
    Arena.canon(0, makeBlock(I));
  InternArena::PublishStats S = Arena.publishStaged();
  EXPECT_EQ(S.Inserted, 8u);
  EXPECT_GT(S.Evicted, 0u); // The cap cannot hold all eight.
  EXPECT_LE(Arena.bytes(), 256u);
  EXPECT_LT(Arena.size(), 8u);
  EXPECT_EQ(Arena.nextId(), 8u); // Ids were assigned before eviction.
  uint64_t FirstId = First->internId();
  EXPECT_NE(FirstId, 0u);

  // Re-interning evicted content gets a FRESH class id: ids are never
  // reused, so stale ids on surviving block copies can never alias a new
  // class. Probe all eight contents (survivors hit and return the stamped
  // published instance; evicted ones miss, stage, and get stamped at the
  // publish below) and require exactly the evicted classes to come back
  // under strictly newer ids.
  std::vector<BlockPtr> Probes;
  for (int I = 0; I < 8; ++I)
    Probes.push_back(Arena.canon(0, makeBlock(I)));
  InternArena::PublishStats S2 = Arena.publishStaged();
  EXPECT_EQ(S2.Inserted, S.Evicted); // Only evicted contents missed.
  EXPECT_EQ(Arena.nextId(), 8u + S2.Inserted);
  unsigned Fresh = 0;
  for (const BlockPtr &P : Probes) {
    ASSERT_NE(P->internId(), 0u);
    if (P->internId() > 8)
      ++Fresh;
  }
  EXPECT_EQ(Fresh, S2.Inserted);
}

// Snapshot round-trip: the arena serializes through the engine's shared
// BlockTable, so a frontier block and its arena canonical write once and
// restore to the SAME shared instance — the restored run re-interns its
// state on load and keeps pointer-identity equality working.
TEST(Intern, SnapshotReinternRoundTrip) {
  InternArena Arena(1 << 20, 1);
  BlockPtr Canon0 = Arena.canon(0, makeBlock(0));
  Arena.canon(0, makeBlock(1));
  Arena.publishStaged();
  uint64_t Hits = 0, Misses = 0;
  Arena.drainCounters(Hits, Misses);

  NetConfig Frontier = configOf(Canon0, 3);

  SnapWriter W;
  BlockTable T;
  snapNetConfig(W, T, Frontier);
  Arena.snapshotTo(W, T);
  const std::string Bytes = W.buffer();

  SnapReader R(Bytes);
  BlockReadTable RT;
  NetConfig Restored;
  ASSERT_TRUE(readNetConfig(R, RT, Restored));
  InternArena Arena2(1 << 20, 1);
  ASSERT_TRUE(Arena2.restoreFrom(R, RT));
  EXPECT_TRUE(R.atEnd());

  EXPECT_EQ(Arena2.size(), Arena.size());
  EXPECT_EQ(Arena2.bytes(), Arena.bytes());
  EXPECT_EQ(Arena2.nextId(), Arena.nextId());

  // The restored frontier block IS the restored arena canonical: probing
  // equal content returns the exact pointer the frontier holds.
  BlockPtr Probe = Arena2.canon(0, makeBlock(0));
  EXPECT_EQ(Probe.get(), Restored.Nodes.block(0).get());
  EXPECT_EQ(Probe->internId(), Canon0->internId());

  // Re-serializing the restored state is byte-identical — what makes a
  // resumed run's own snapshots match the uninterrupted run's.
  SnapWriter W2;
  BlockTable T2;
  snapNetConfig(W2, T2, Restored);
  Arena2.snapshotTo(W2, T2);
  EXPECT_EQ(W2.buffer(), Bytes);

  // Corrupt section: a truncated stream fails the restore cleanly. (The
  // reader only views the buffer, so the truncated copy must outlive it.)
  const std::string Truncated = Bytes.substr(0, Bytes.size() / 2);
  SnapReader Bad(Truncated);
  BlockReadTable BadT;
  NetConfig Dropped;
  (void)readNetConfig(Bad, BadT, Dropped);
  InternArena Arena3(1 << 20, 1);
  EXPECT_FALSE(Arena3.restoreFrom(Bad, BadT));
}

// configClass: a whole-configuration equality witness, defined only when
// every block is interned.
TEST(Intern, ConfigClassSoundness) {
  InternArena Arena(1 << 20, 1);
  BlockPtr B0 = Arena.canon(0, makeBlock(0));
  Arena.publishStaged();

  NetConfig C1 = configOf(B0, 1);
  NetConfig C2 = configOf(Arena.canon(0, makeBlock(0)), 1);
  NetConfig C3 = configOf(B0, 2); // Different scheduler state.
  uint64_t K1 = Arena.configClass(C1);
  ASSERT_NE(K1, 0u);
  EXPECT_EQ(Arena.configClass(C2), K1);
  EXPECT_NE(Arena.configClass(C3), K1);

  // Un-interned blocks yield 0: callers must fall back to structural
  // identity rather than trust a partial key.
  NetConfig Raw = configOf(makeBlock(0), 1);
  EXPECT_EQ(Arena.configClass(Raw), 0u);
}

// The protocol claim TSan checks: during a step, any number of lanes may
// probe the published table (hits) and stage misses into their own lanes
// concurrently; publication happens strictly after the join. Hit/miss
// totals must come out exact, and every equal-content block must end up
// stamped with one class id.
TEST(Intern, ConcurrentProbeAndStageHammer) {
  constexpr unsigned NumLanes = 8;
  constexpr int PerLane = 2000;
  InternArena Arena(64 << 20, NumLanes);

  // Pre-publish a shared content set every lane will hammer as hits.
  constexpr int NumShared = 32;
  for (int I = 0; I < NumShared; ++I)
    Arena.canon(0, makeBlock(I));
  Arena.publishStaged();
  {
    uint64_t H = 0, M = 0;
    Arena.drainCounters(H, M);
  }

  std::vector<BlockPtr> Keep(NumLanes); // Published-instance witnesses.
  std::vector<std::thread> Threads;
  for (unsigned L = 0; L < NumLanes; ++L)
    Threads.emplace_back([&Arena, &Keep, L] {
      for (int I = 0; I < PerLane; ++I) {
        // A hit probe against the published table...
        BlockPtr Hit = Arena.canon(L, makeBlock(I % NumShared));
        if (I == 0)
          Keep[L] = Hit;
        // ...and a lane-unique miss that stages without touching it.
        Arena.canon(L, makeBlock(10000 + static_cast<int>(L) * PerLane + I));
      }
    });
  for (std::thread &T : Threads)
    T.join();

  uint64_t Hits = 0, Misses = 0;
  Arena.drainCounters(Hits, Misses);
  EXPECT_EQ(Hits, static_cast<uint64_t>(NumLanes) * PerLane);
  EXPECT_EQ(Misses, static_cast<uint64_t>(NumLanes) * PerLane);

  InternArena::PublishStats S = Arena.publishStaged();
  EXPECT_EQ(S.Inserted, static_cast<uint64_t>(NumLanes) * PerLane);
  EXPECT_EQ(Arena.size(), static_cast<size_t>(NumShared) + NumLanes * PerLane);

  // Every lane's hit resolved to the one published instance per class.
  uint64_t Id0 = Keep[0]->internId();
  EXPECT_NE(Id0, 0u);
  for (unsigned L = 1; L < NumLanes; ++L)
    EXPECT_EQ(Keep[L]->internId(), Id0);
}

} // namespace
