//===- tests/NetModelTest.cpp - Network model unit tests ------------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Config.h"
#include "net/NetworkSpec.h"
#include "net/Scheduler.h"
#include "net/Topology.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

Packet mkPacket(int64_t V) {
  Packet P;
  P.Fields.push_back(Value(Rational(V)));
  return P;
}

TEST(TopologyTest, AddAndLookupLinks) {
  Topology T(3);
  EXPECT_TRUE(T.addLink({0, 1}, {1, 1}));
  EXPECT_TRUE(T.addLink({1, 2}, {2, 1}));
  EXPECT_EQ(T.numLinks(), 2u);
  auto P = T.peer(0, 1);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Node, 1u);
  EXPECT_EQ(P->Port, 1);
  // Symmetric.
  P = T.peer(1, 1);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Node, 0u);
  EXPECT_FALSE(T.peer(0, 2).has_value());
}

TEST(TopologyTest, RejectsDoubleConnection) {
  Topology T(3);
  EXPECT_TRUE(T.addLink({0, 1}, {1, 1}));
  EXPECT_FALSE(T.addLink({0, 1}, {2, 1})); // port (0,1) already used
  EXPECT_FALSE(T.addLink({2, 1}, {1, 1})); // port (1,1) already used
  EXPECT_EQ(T.numLinks(), 1u);
}

TEST(TopologyTest, IsLinked) {
  Topology T(3);
  T.addLink({0, 1}, {1, 1});
  EXPECT_TRUE(T.isLinked(0));
  EXPECT_TRUE(T.isLinked(1));
  EXPECT_FALSE(T.isLinked(2));
}

TEST(PacketQueueTest, FifoOrder) {
  PacketQueue Q(3);
  Q.pushBack({mkPacket(1), 1});
  Q.pushBack({mkPacket(2), 2});
  EXPECT_EQ(Q.size(), 2u);
  QueueEntry E = Q.takeFront();
  EXPECT_EQ(E.Pkt.Fields[0].concrete(), Rational(1));
  EXPECT_EQ(Q.front().Pkt.Fields[0].concrete(), Rational(2));
}

TEST(PacketQueueTest, CapacityDropsSilently) {
  // The paper's enqueue leaves a full queue intact; this is the congestion
  // mechanism.
  PacketQueue Q(2);
  EXPECT_TRUE(Q.pushBack({mkPacket(1), 1}));
  EXPECT_TRUE(Q.pushBack({mkPacket(2), 1}));
  EXPECT_FALSE(Q.pushBack({mkPacket(3), 1}));
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_FALSE(Q.pushFront({mkPacket(4), 1}));
  EXPECT_EQ(Q.front().Pkt.Fields[0].concrete(), Rational(1));
}

TEST(PacketQueueTest, PushFrontOrder) {
  // new/dup place packets at the head (rules L-New/L-Dup).
  PacketQueue Q(3);
  Q.pushBack({mkPacket(1), 1});
  Q.pushFront({mkPacket(9), 0});
  EXPECT_EQ(Q.front().Pkt.Fields[0].concrete(), Rational(9));
  EXPECT_EQ(Q.size(), 2u);
}

TEST(PacketQueueTest, ZeroCapacityRejectsEverything) {
  PacketQueue Q(0);
  EXPECT_TRUE(Q.full());
  EXPECT_FALSE(Q.pushBack({mkPacket(1), 1}));
  EXPECT_TRUE(Q.empty());
}

TEST(ConfigTest, EqualityAndHashing) {
  NetConfig A, B;
  A.Nodes.resize(2);
  B.Nodes.resize(2);
  A.Nodes.mut(0).State.push_back(Value(Rational(1)));
  B.Nodes.mut(0).State.push_back(Value(Rational(1)));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  B.Nodes.mut(1).QIn = PacketQueue(2);
  B.Nodes.mut(1).QIn.pushBack({mkPacket(1), 1});
  EXPECT_FALSE(A == B);
  // Scheduler state and error flag distinguish configurations.
  NetConfig C = A;
  C.SchedState = 5;
  EXPECT_FALSE(A == C);
  NetConfig D = A;
  D.Error = true;
  EXPECT_FALSE(A == D);
}

NetConfig twoNodeConfig(bool In0, bool Out0, bool In1, bool Out1) {
  NetConfig C;
  C.Nodes.resize(2);
  for (unsigned I = 0; I < 2; ++I) {
    NodeConfig &N = C.Nodes.mut(I);
    N.QIn = PacketQueue(2);
    N.QOut = PacketQueue(2);
  }
  if (In0)
    C.Nodes.mut(0).QIn.pushBack({mkPacket(0), 0});
  if (Out0)
    C.Nodes.mut(0).QOut.pushBack({mkPacket(0), 1});
  if (In1)
    C.Nodes.mut(1).QIn.pushBack({mkPacket(0), 0});
  if (Out1)
    C.Nodes.mut(1).QOut.pushBack({mkPacket(0), 1});
  return C;
}

TEST(SchedulerTest, EnabledActionsEnumeration) {
  NetConfig C = twoNodeConfig(true, false, false, true);
  auto Actions = enabledActions(C);
  ASSERT_EQ(Actions.size(), 2u);
  EXPECT_EQ(Actions[0].K, Action::Kind::Run);
  EXPECT_EQ(Actions[0].Node, 0u);
  EXPECT_EQ(Actions[1].K, Action::Kind::Fwd);
  EXPECT_EQ(Actions[1].Node, 1u);
}

TEST(SchedulerTest, UniformProbabilities) {
  UniformScheduler S;
  NetConfig C = twoNodeConfig(true, true, true, false);
  auto Choices = S.choices(C);
  ASSERT_EQ(Choices.size(), 3u);
  Rational Sum;
  for (const SchedChoice &Ch : Choices) {
    EXPECT_EQ(Ch.Prob, Rational(BigInt(1), BigInt(3)));
    Sum += Ch.Prob;
  }
  EXPECT_EQ(Sum, Rational(1));
  // Terminal configuration: no choices.
  EXPECT_TRUE(S.choices(twoNodeConfig(false, false, false, false)).empty());
}

TEST(SchedulerTest, DeterministicPicksFirstEnabled) {
  DeterministicScheduler S;
  NetConfig C = twoNodeConfig(false, true, true, false);
  auto Choices = S.choices(C);
  ASSERT_EQ(Choices.size(), 1u);
  EXPECT_EQ(Choices[0].Act.K, Action::Kind::Fwd);
  EXPECT_EQ(Choices[0].Act.Node, 0u);
  EXPECT_EQ(Choices[0].Prob, Rational(1));
}

TEST(SchedulerTest, RoundRobinRotorAdvances) {
  RoundRobinScheduler S;
  NetConfig C = twoNodeConfig(true, false, true, false);
  // Rotor at 0: picks Run 0 (slot 0), next state 1.
  auto Choices = S.choices(C);
  ASSERT_EQ(Choices.size(), 1u);
  EXPECT_EQ(Choices[0].Act.Node, 0u);
  EXPECT_EQ(Choices[0].NextSchedState, 1);
  // Rotor at 1: slot 1 (Fwd 0) disabled, slot 2 (Run 1) enabled.
  C.SchedState = 1;
  Choices = S.choices(C);
  ASSERT_EQ(Choices.size(), 1u);
  EXPECT_EQ(Choices[0].Act.Node, 1u);
  EXPECT_EQ(Choices[0].Act.K, Action::Kind::Run);
  EXPECT_EQ(Choices[0].NextSchedState, 3);
}

TEST(SchedulerTest, FactoryCreatesAllKinds) {
  EXPECT_STREQ(Scheduler::create(SchedulerKind::Uniform)->name(), "uniform");
  EXPECT_STREQ(Scheduler::create(SchedulerKind::RoundRobin)->name(),
               "roundrobin");
  EXPECT_STREQ(Scheduler::create(SchedulerKind::Deterministic)->name(),
               "deterministic");
}

TEST(ValueTest, ConcreteVsSymbolic) {
  Value A(Rational(3));
  EXPECT_TRUE(A.isConcrete());
  EXPECT_EQ(A.concrete(), Rational(3));
  // Constant LinExpr normalizes to the concrete alternative.
  Value B{LinExpr(Rational(3))};
  EXPECT_TRUE(B.isConcrete());
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  Value C{LinExpr::param(0)};
  EXPECT_TRUE(C.isSymbolic());
  EXPECT_FALSE(A == C);
}

} // namespace
