//===- tests/PrngTest.cpp - PRNG statistical sanity tests -----------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

TEST(PrngTest, Deterministic) {
  Xoshiro A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Xoshiro A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(PrngTest, DoubleRange) {
  Xoshiro Rng(5);
  for (int I = 0; I < 10000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(PrngTest, NextBelowInRangeAndRoughlyUniform) {
  Xoshiro Rng(6);
  int Counts[10] = {0};
  const int N = 100000;
  for (int I = 0; I < N; ++I) {
    uint64_t V = Rng.nextBelow(10);
    ASSERT_LT(V, 10u);
    ++Counts[V];
  }
  for (int C : Counts)
    EXPECT_NEAR(C, N / 10, 500);
}

TEST(PrngTest, FlipRationalExactBias) {
  Xoshiro Rng(7);
  const int N = 200000;
  int Hits = 0;
  Rational P(BigInt(1), BigInt(1000));
  for (int I = 0; I < N; ++I)
    Hits += Rng.flip(P);
  EXPECT_NEAR(Hits / double(N), 0.001, 0.0005);
  EXPECT_FALSE(Rng.flip(Rational(0)));
  EXPECT_TRUE(Rng.flip(Rational(1)));
}

TEST(PrngTest, UniformIntBounds) {
  Xoshiro Rng(8);
  for (int I = 0; I < 10000; ++I) {
    int64_t V = Rng.uniformInt(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
  }
  EXPECT_EQ(Rng.uniformInt(5, 5), 5);
}


TEST(PrngTest, JumpAdvancesState) {
  Xoshiro A(123), B(123);
  B.jump();
  // Jumped generator leaves the original sequence behind.
  bool Differs = false;
  for (int I = 0; I < 8; ++I)
    Differs |= A.next() != B.next();
  EXPECT_TRUE(Differs);
}

TEST(PrngTest, SplitStreamsAreDisjointAndDeterministic) {
  Xoshiro M1(0x5eed), M2(0x5eed);
  Xoshiro A1 = M1.split(), B1 = M1.split();
  Xoshiro A2 = M2.split(), B2 = M2.split();
  // Same master seed: the same family of substreams, in order.
  for (int I = 0; I < 16; ++I) {
    EXPECT_EQ(A1.next(), A2.next());
    EXPECT_EQ(B1.next(), B2.next());
  }
  // Sibling substreams differ from each other and from the master.
  Xoshiro A3 = M1.split();
  bool DiffersAB = false, DiffersAM = false;
  Xoshiro AFresh(0x5eed);
  Xoshiro AChild = AFresh.split();
  Xoshiro BChild = AFresh.split();
  for (int I = 0; I < 16; ++I) {
    DiffersAB |= AChild.next() != BChild.next();
    DiffersAM |= A3.next() != M1.next();
  }
  EXPECT_TRUE(DiffersAB);
  EXPECT_TRUE(DiffersAM);
}

TEST(PrngTest, SplitChildContinuesLikeCopy) {
  // split() returns the pre-jump state: the child reproduces what the
  // parent would have produced, which is what makes stream assignment a
  // pure function of (seed, index).
  Xoshiro M(99);
  Xoshiro Copy = M; // parent state before the split
  Xoshiro Child = M.split();
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Child.next(), Copy.next());
}

} // namespace
