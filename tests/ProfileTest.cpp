//===- tests/ProfileTest.cpp - Source-attributed cost profiler ------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the profiler core: attribution-stack interning, the
/// wall-time-only Scope contract, pre-order def registration, lane shard
/// drain/discard semantics, checkpoint round-trips that survive intern
/// re-ordering, the deterministic canonical rendering, the three export
/// views, and the seqlock ProfileBoard (including concurrent readers —
/// this suite runs under TSan).
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "obs/Profile.h"
#include "scenarios/Scenarios.h"
#include "support/Snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace bayonet;

namespace {

LoadedNetwork load(const std::string &Src) {
  DiagEngine Diags;
  auto Net = loadNetwork(Src, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.toString();
  return std::move(*Net);
}

SourceLoc loc(int Line, int Col) {
  SourceLoc L;
  L.Line = Line;
  L.Col = Col;
  return L;
}

} // namespace

//===----------------------------------------------------------------------===//
// Attribution stack and interning
//===----------------------------------------------------------------------===//

TEST(Profile, PushPopInternsStableSlots) {
  Profiler P;
  EXPECT_EQ(P.current(), Profiler::InvalidSlot);

  uint32_t Engine = P.push("exact");
  uint32_t Step = P.push("step");
  EXPECT_EQ(P.current(), Step);
  EXPECT_EQ(P.stackKey(Step), "exact;step");
  P.pop();
  P.pop();
  EXPECT_EQ(P.current(), Profiler::InvalidSlot);

  // Re-pushing the same labels finds the same slots: per-step push/pop
  // cycles allocate nothing after the first.
  size_t Slots = P.slotCount();
  EXPECT_EQ(P.push("exact"), Engine);
  EXPECT_EQ(P.push("step"), Step);
  P.pop();
  P.pop();
  EXPECT_EQ(P.slotCount(), Slots);

  // Same label under a different parent is a different key.
  uint32_t Other = P.push("smc");
  uint32_t OtherStep = P.push("step");
  EXPECT_NE(OtherStep, Step);
  EXPECT_EQ(P.stackKey(OtherStep), "smc;step");
  P.pop();
  P.pop();

  // child()/internAt() intern without pushing.
  P.push("exact");
  uint32_t Merge = P.child("merge");
  EXPECT_EQ(P.current(), Engine);
  EXPECT_EQ(P.internAt(Engine, "merge", {}), Merge);
  P.pop();
  (void)Other;
}

TEST(Profile, ScopeChargesOnlyWallTime) {
  Profiler P;
  {
    Profiler::Scope Run(&P, "exact");
    Profiler::Scope Step(&P, "step");
    EXPECT_EQ(P.stackKey(P.current()), "exact;step");
  }
  EXPECT_EQ(P.current(), Profiler::InvalidSlot);
  // Scopes attribute wall time only: no deterministic column moved, so
  // the canonical fingerprint is still empty.
  EXPECT_EQ(P.renderCanonicalCounts(), "");

  // A null profiler is a no-op scope (engines run unprofiled this way).
  Profiler::Scope Nop(nullptr, "exact");
  EXPECT_EQ(Nop.slot(), Profiler::InvalidSlot);
}

TEST(Profile, RegisterDefPreOrderContiguousAndIdempotent) {
  LoadedNetwork Net = load(scenarios::gossip(3));
  const DefDecl *Def = nullptr;
  for (const DefDecl *D : Net.Spec.NodePrograms)
    if (D) {
      Def = D;
      break;
    }
  ASSERT_NE(Def, nullptr);

  Profiler P;
  P.push("exact");
  P.push("step");
  P.push("expand");
  Profiler::DefFrames DF = P.registerDef(*Def);
  ASSERT_GT(DF.Count, 0u);
  EXPECT_EQ(P.stackKey(DF.Root), "exact;step;expand;def " + Def->Name);

  // Statement I lives at slot First + I, under the def root.
  for (uint32_t I = 0; I < DF.Count; ++I) {
    std::string Key = P.stackKey(DF.First + I);
    EXPECT_EQ(Key.rfind("exact;step;expand;def " + Def->Name + ";", 0), 0u)
        << Key;
  }

  // Re-registration under the same prefix finds the identical frames.
  size_t Slots = P.slotCount();
  Profiler::DefFrames Again = P.registerDef(*Def);
  EXPECT_EQ(Again.Root, DF.Root);
  EXPECT_EQ(Again.First, DF.First);
  EXPECT_EQ(Again.Count, DF.Count);
  EXPECT_EQ(P.slotCount(), Slots);
  P.pop();
  P.pop();
  P.pop();
}

//===----------------------------------------------------------------------===//
// Lane shards
//===----------------------------------------------------------------------===//

TEST(Profile, LaneDrainFoldsAndDiscardDrops) {
  Profiler P;
  P.push("exact");
  uint32_t A = P.push("a");
  P.pop();
  uint32_t B = P.push("b");
  P.pop();
  P.pop();

  P.beginLanes(4);
  ASSERT_EQ(P.laneCount(), 4u);
  // Lanes charge per-slot counters; the fold is an order-independent sum.
  P.laneExecs(0)[A] += 3;
  P.laneExecs(2)[A] += 5;
  P.laneSamples(1)[B] += 7;
  P.laneTxHits(3)[A] += 2;
  P.laneTxMisses(0)[B] += 1;
  P.drainLanes();

  std::string Canon = P.renderCanonicalCounts();
  EXPECT_EQ(Canon, "exact;a|0|8|0|0|0|2|0|0|0\n"
                   "exact;b|0|0|7|0|0|0|1|0|0\n");

  // Draining again moves nothing (shards were zeroed).
  P.drainLanes();
  EXPECT_EQ(P.renderCanonicalCounts(), Canon);

  // An aborted step discards its lane charges entirely.
  P.laneExecs(1)[A] += 100;
  P.laneSamples(2)[B] += 100;
  P.discardLanes();
  P.drainLanes();
  EXPECT_EQ(P.renderCanonicalCounts(), Canon);
  P.pop();
}

//===----------------------------------------------------------------------===//
// Canonical rendering
//===----------------------------------------------------------------------===//

TEST(Profile, CanonicalCountsSortedAndZeroFramesDropped) {
  Profiler P;
  // Intern in reverse-alphabetical order; the rendering sorts by key.
  uint32_t Z = P.push("zeta");
  P.pop();
  uint32_t A = P.push("alpha");
  P.pop();
  P.push("never-charged");
  P.pop();

  ProfCounts C;
  C.States = 4;
  C.MergeAttempts = 2;
  C.MergeHits = 1;
  P.charge(Z, C);
  ProfCounts D;
  D.Execs = 9;
  P.charge(A, D);
  // Wall time alone does not make a frame canonical.
  P.chargeTime(A, 12345);

  EXPECT_EQ(P.renderCanonicalCounts(), "alpha|0|9|0|0|0|0|0|0|0\n"
                                       "zeta|4|0|0|2|1|0|0|0|0\n");
}

TEST(Profile, RenderJsonSchemaAndTotals) {
  Profiler P;
  uint32_t A = P.push("exact", loc(3, 1));
  P.pop();
  ProfCounts C;
  C.States = 6;
  P.charge(A, C);

  std::string Json = P.renderJson();
  EXPECT_NE(Json.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"deterministic_columns\":[\"states\",\"execs\","
                      "\"samples\",\"merge_attempts\",\"merge_hits\","
                      "\"tx_hits\",\"tx_misses\",\"intern_hits\","
                      "\"intern_misses\"]"),
            std::string::npos);
  EXPECT_NE(Json.find("\"nondeterministic_columns\":[\"wall_ns\","
                      "\"allocs\"]"),
            std::string::npos);
  EXPECT_NE(Json.find("\"totals\":null"), std::string::npos)
      << "totals unset until the engine stamps them";
  EXPECT_NE(Json.find("\"stack\":\"exact\""), std::string::npos);
  EXPECT_NE(Json.find("\"loc\":\"3:1\""), std::string::npos);

  ProfCounts T;
  T.States = 6;
  P.setTotals(T);
  EXPECT_TRUE(P.haveTotals());
  Json = P.renderJson();
  EXPECT_NE(Json.find("\"totals\":{\"states\":6,"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Flamegraph and annotation exports
//===----------------------------------------------------------------------===//

TEST(Profile, CollapsedStacksCarrySelfWeights) {
  Profiler P;
  uint32_t Run = P.push("exact");
  uint32_t Step = P.push("step");
  P.pop();
  P.pop();
  ProfCounts C;
  C.States = 11;
  P.charge(Step, C);
  ProfCounts D;
  D.Execs = 2;
  D.Samples = 3;
  P.charge(Run, D); // No states: weight falls back to execs + samples.

  EXPECT_EQ(P.renderCollapsed(), "exact 5\nexact;step 11\n");
}

TEST(Profile, SpeedscopeProfileSumsWeights) {
  Profiler P;
  uint32_t Step = P.push("exact", loc(1, 1));
  uint32_t Expand = P.push("expand");
  P.pop();
  P.pop();
  ProfCounts C;
  C.States = 7;
  P.charge(Expand, C);
  ProfCounts D;
  D.States = 3;
  P.charge(Step, D);

  std::string S = P.renderSpeedscope();
  EXPECT_NE(S.find("\"$schema\":\"https://www.speedscope.app/"
                   "file-format-schema.json\""),
            std::string::npos);
  EXPECT_NE(S.find("\"type\":\"sampled\""), std::string::npos);
  EXPECT_NE(S.find("\"endValue\":10"), std::string::npos)
      << "end value is the summed self weight";
  EXPECT_NE(S.find("\"weights\":[3,7]"), std::string::npos) << S;
  // The expand sample names its full ancestor chain.
  EXPECT_NE(S.find("\"samples\":[[0],[0,1]]"), std::string::npos) << S;
}

TEST(Profile, AnnotatedListingAttributesSourceLines) {
  Profiler P;
  uint32_t L1 = P.push("observe@1:3", loc(1, 3));
  P.pop();
  uint32_t L2 = P.push("fwd@2:1", loc(2, 1));
  P.pop();
  ProfCounts C;
  C.Execs = 3;
  P.charge(L1, C);
  ProfCounts D;
  D.Execs = 1;
  P.charge(L2, D);

  std::string Out = P.renderAnnotated("line one\nline two\nline three");
  EXPECT_NE(Out.find("%states"), std::string::npos);
  EXPECT_NE(Out.find("  75.00%"), std::string::npos) << Out;
  EXPECT_NE(Out.find("  25.00%"), std::string::npos) << Out;
  EXPECT_NE(Out.find("| line one"), std::string::npos);
  // Uncharged lines render an empty margin, not 0.00%.
  EXPECT_NE(Out.find("         | line three"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Checkpoint round-trip
//===----------------------------------------------------------------------===//

TEST(Profile, SnapshotRoundTripPreservesCanonicalCounts) {
  Profiler P;
  P.push("exact");
  uint32_t Step = P.push("step");
  uint32_t Expand = P.push("expand", loc(4, 2));
  P.pop();
  P.pop();
  P.pop();
  ProfCounts C;
  C.States = 21;
  C.MergeAttempts = 8;
  C.MergeHits = 3;
  P.charge(Step, C);
  ProfCounts D;
  D.Execs = 40;
  D.TxHits = 5;
  D.TxMisses = 2;
  P.charge(Expand, D);

  SnapWriter W;
  P.snapshotTo(W);

  // Restore into a fresh profiler: identical fingerprint.
  {
    SnapReader R(W.buffer());
    Profiler Q;
    ASSERT_TRUE(Q.restoreFrom(R));
    EXPECT_TRUE(R.atEnd());
    EXPECT_EQ(Q.renderCanonicalCounts(), P.renderCanonicalCounts());
  }

  // Restore into a profiler whose intern order differs (extra frames
  // first): counts land on the re-interned slots, keyed by path, and the
  // pre-existing wall time of a matching frame survives.
  {
    Profiler Q;
    Q.push("smc");
    Q.pop();
    uint32_t QStep = Q.push("exact");
    QStep = Q.push("step");
    Q.pop();
    Q.pop();
    Q.chargeTime(QStep, 777);
    SnapReader R(W.buffer());
    ASSERT_TRUE(Q.restoreFrom(R));
    EXPECT_EQ(Q.renderCanonicalCounts(), P.renderCanonicalCounts());
    std::string Json = Q.renderJson();
    EXPECT_NE(Json.find("\"wall_ns\":777"), std::string::npos)
        << "restore must not clobber process-local wall time";
  }

  // A truncated section is rejected, never half-applied silently.
  {
    std::string Buf = W.buffer().substr(0, W.buffer().size() / 2);
    SnapReader R(Buf);
    Profiler Q;
    EXPECT_FALSE(Q.restoreFrom(R));
  }
}

//===----------------------------------------------------------------------===//
// ProfileBoard (seqlock)
//===----------------------------------------------------------------------===//

TEST(Profile, BoardPublishReadRoundTrip) {
  ProfileBoard B;
  std::string Out;
  EXPECT_FALSE(B.read(Out)) << "nothing published yet";
  EXPECT_EQ(B.publishes(), 0u);

  B.publish("{\"enabled\":true}");
  ASSERT_TRUE(B.read(Out));
  EXPECT_EQ(Out, "{\"enabled\":true}");
  EXPECT_EQ(B.publishes(), 1u);

  // Re-publish replaces; oversized payloads truncate to the 8 KiB board.
  B.publish("second");
  ASSERT_TRUE(B.read(Out));
  EXPECT_EQ(Out, "second");
  std::string Big(10000, 'x');
  B.publish(Big);
  ASSERT_TRUE(B.read(Out));
  EXPECT_EQ(Out.size(), 8192u);
  EXPECT_EQ(Out, Big.substr(0, 8192));
}

TEST(Profile, BoardConcurrentReadersSeeTornFreePayloads) {
  ProfileBoard B;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Reads{0};
  // Each payload is one repeated character: a torn read would mix them.
  std::vector<std::thread> Readers;
  for (int T = 0; T < 3; ++T)
    Readers.emplace_back([&] {
      std::string Out;
      while (!Stop.load(std::memory_order_relaxed)) {
        if (!B.read(Out))
          continue;
        ASSERT_FALSE(Out.empty());
        char C = Out[0];
        EXPECT_TRUE(C == 'a' || C == 'b');
        EXPECT_EQ(Out, std::string(Out.size(), C)) << "torn seqlock read";
        Reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (int I = 0; I < 4000; ++I)
    B.publish(std::string(I % 2 ? 500 : 900, I % 2 ? 'a' : 'b'));
  // With the publisher quiescent a read cannot retry forever, so wait for at
  // least one success instead of racing the publish storm above.
  while (Reads.load(std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(Reads.load(), 0u);
  EXPECT_EQ(B.publishes(), 4000u);
}

TEST(Profile, PublishBoardRendersTopFramesBySelfWeight) {
  Profiler P;
  uint32_t Hot = P.push("hot");
  P.pop();
  uint32_t Cold = P.push("cold");
  P.pop();
  ProfCounts C;
  C.States = 100;
  P.charge(Hot, C);
  ProfCounts D;
  D.States = 1;
  P.charge(Cold, D);
  P.publishBoard();

  std::string Out;
  ASSERT_TRUE(P.board().read(Out));
  EXPECT_NE(Out.find("\"enabled\":true"), std::string::npos);
  size_t HotPos = Out.find("\"stack\":\"hot\"");
  size_t ColdPos = Out.find("\"stack\":\"cold\"");
  ASSERT_NE(HotPos, std::string::npos);
  ASSERT_NE(ColdPos, std::string::npos);
  EXPECT_LT(HotPos, ColdPos) << "top list sorts by self weight";
}
