//===- tests/LexerTest.cpp - Lexer tests ----------------------------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

std::vector<Token> lex(std::string_view Src) {
  DiagEngine Diags;
  Lexer L(Src, Diags);
  auto Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return Tokens;
}

TEST(LexerTest, EmptyInput) {
  auto T = lex("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(TokKind::Eof));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto T = lex("topology nodes def fwd myVar pkt_cnt flip");
  ASSERT_EQ(T.size(), 8u);
  EXPECT_TRUE(T[0].is(TokKind::KwTopology));
  EXPECT_TRUE(T[1].is(TokKind::KwNodes));
  EXPECT_TRUE(T[2].is(TokKind::KwDef));
  EXPECT_TRUE(T[3].is(TokKind::KwFwd));
  EXPECT_TRUE(T[4].is(TokKind::Identifier));
  EXPECT_EQ(T[4].Text, "myVar");
  EXPECT_TRUE(T[5].is(TokKind::Identifier));
  EXPECT_TRUE(T[6].is(TokKind::KwFlip));
}

TEST(LexerTest, OperatorsAndArrows) {
  auto T = lex("-> <-> <= >= == != < > = + - * / @ .");
  std::vector<TokKind> Expected = {
      TokKind::Arrow,  TokKind::BiArrow,   TokKind::LessEq, TokKind::GreaterEq,
      TokKind::EqEq,   TokKind::NotEq,     TokKind::Less,   TokKind::Greater,
      TokKind::Assign, TokKind::Plus,      TokKind::Minus,  TokKind::Star,
      TokKind::Slash,  TokKind::At,        TokKind::Dot,    TokKind::Eof};
  ASSERT_EQ(T.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << "token " << I;
}

TEST(LexerTest, Numbers) {
  auto T = lex("0 42 123456789");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_TRUE(T[0].is(TokKind::Integer));
  EXPECT_EQ(T[1].Text, "42");
  EXPECT_EQ(T[2].Text, "123456789");
}

TEST(LexerTest, Comments) {
  auto T = lex("a // line comment\n b /* block \n comment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(LexerTest, SourceLocations) {
  auto T = lex("ab\n  cd");
  ASSERT_GE(T.size(), 2u);
  EXPECT_EQ(T[0].Loc.Line, 1);
  EXPECT_EQ(T[0].Loc.Col, 1);
  EXPECT_EQ(T[1].Loc.Line, 2);
  EXPECT_EQ(T[1].Loc.Col, 3);
}

TEST(LexerTest, ErrorRecovery) {
  DiagEngine Diags;
  Lexer L("a # b", Diags);
  auto T = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the bad character.
  ASSERT_EQ(T.size(), 4u);
  EXPECT_TRUE(T[1].is(TokKind::Error));
  EXPECT_EQ(T[2].Text, "b");
}

TEST(LexerTest, UnterminatedBlockComment) {
  DiagEngine Diags;
  Lexer L("a /* never closed", Diags);
  auto T = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(T.back().Kind, TokKind::Eof);
}

TEST(LexerTest, BangRequiresEquals) {
  DiagEngine Diags;
  Lexer L("a ! b", Diags);
  auto T = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(T[1].is(TokKind::Error));
}

} // namespace
