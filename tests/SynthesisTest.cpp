//===- tests/SynthesisTest.cpp - Parameter synthesis tests ----------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2.3 / Figure 3: with symbolic link costs the congestion
/// probability is a piecewise function of COST_01, COST_02, COST_21 with
/// exactly three regions; concrete cost vectors can then be synthesized
/// from the minimizing region.
///
//===----------------------------------------------------------------------===//

#include "api/Bayonet.h"
#include "TestNetworks.h"

#include <gtest/gtest.h>

using namespace bayonet;

namespace {

TEST(SynthesisTest, Figure3PiecewiseCongestionExact) {
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExampleSymbolic, Diags);
  ASSERT_TRUE(Net.has_value()) << Diags.toString();
  ExactResult R = ExactEngine(Net->Spec).run();
  ASSERT_FALSE(R.QueryUnsupported) << R.UnsupportedReason;

  std::vector<ProbCase> Cases = R.cases();
  ASSERT_EQ(Cases.size(), 3u);

  // Figure 3 of the paper, verbatim.
  bool FoundEq = false, FoundLt = false, FoundGt = false;
  for (const ProbCase &C : Cases) {
    std::string Region = C.Region.toString(Net->Spec.Params);
    if (Region.find("==") != std::string::npos) {
      FoundEq = true;
      EXPECT_EQ(C.Value.toString(), "30378810105265/67706637778944");
    } else if (Region == "{COST_01 - COST_02 - COST_21 < 0}") {
      FoundLt = true;
      EXPECT_EQ(C.Value.toString(), "491806403/1088391168");
    } else {
      FoundGt = true;
      EXPECT_EQ(C.Value.toString(), "2025575442161/4231664861184");
    }
  }
  EXPECT_TRUE(FoundEq && FoundLt && FoundGt);
}

TEST(SynthesisTest, MinimizingRegionIsEquality) {
  // The paper: minimum congestion (~0.4487) is attained when
  // COST_01 == COST_02 + COST_21 (ECMP load-balances both paths).
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExampleSymbolic, Diags);
  ASSERT_TRUE(Net.has_value());
  ExactResult R = ExactEngine(Net->Spec).run();
  std::vector<ProbCase> Cases = R.cases();
  ASSERT_FALSE(Cases.empty());
  const ProbCase *Best = &Cases[0];
  for (const ProbCase &C : Cases)
    if (C.Value < Best->Value)
      Best = &C;
  ASSERT_EQ(Best->Region.constraints().size(), 1u);
  EXPECT_EQ(Best->Region.constraints()[0].rel(), RelKind::EQ);

  // Synthesize concrete costs from the minimizing region.
  auto Model = Best->Region.findModel(Net->Spec.Params.size());
  ASSERT_TRUE(Model.has_value());
  EXPECT_TRUE(Best->Region.evaluate(*Model));

  // Bind the synthesized costs and re-run: the result must equal the
  // region's value.
  for (unsigned I = 0; I < Net->Spec.Params.size(); ++I)
    Net->Spec.ParamValues[I] = (*Model)[I];
  ExactResult Concrete = ExactEngine(Net->Spec).run();
  ASSERT_TRUE(Concrete.concreteValue().has_value());
  EXPECT_EQ(*Concrete.concreteValue(), Best->Value);
}

TEST(SynthesisTest, PaperCostVectorFallsInEqualityRegion) {
  // COST_01=2, COST_02=1, COST_21=1 satisfies COST_01 == COST_02 + COST_21,
  // and the concrete run matches the symbolic region value.
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExampleSymbolic, Diags);
  ASSERT_TRUE(Net.has_value());
  bindParam(*Net, "COST_01", Rational(2));
  bindParam(*Net, "COST_02", Rational(1));
  bindParam(*Net, "COST_21", Rational(1));
  ExactResult R = ExactEngine(Net->Spec).run();
  ASSERT_TRUE(R.concreteValue().has_value());
  EXPECT_EQ(R.concreteValue()->toString(), "30378810105265/67706637778944");
}

TEST(SynthesisTest, SymbolicAnswerEvaluatesConsistently) {
  // Property: evaluating the piecewise answer at any concrete cost vector
  // equals re-running the engine with those costs bound.
  DiagEngine Diags;
  auto Net = loadNetwork(testnets::PaperExampleSymbolic, Diags);
  ASSERT_TRUE(Net.has_value());
  ExactResult Sym = ExactEngine(Net->Spec).run();
  std::vector<ProbCase> Cases = Sym.cases();

  std::vector<std::vector<Rational>> Points = {
      {Rational(1), Rational(1), Rational(1)}, // 1 < 2: direct cheaper
      {Rational(3), Rational(1), Rational(1)}, // 3 > 2: detour cheaper
      {Rational(2), Rational(1), Rational(1)}, // equal costs
  };
  for (const auto &Point : Points) {
    const ProbCase *Match = nullptr;
    for (const ProbCase &C : Cases)
      if (C.Region.evaluate(Point))
        Match = &C;
    ASSERT_NE(Match, nullptr);
    for (unsigned I = 0; I < 3; ++I)
      Net->Spec.ParamValues[I] = Point[I];
    ExactResult Concrete = ExactEngine(Net->Spec).run();
    EXPECT_EQ(*Concrete.concreteValue(), Match->Value);
  }
}

} // namespace
