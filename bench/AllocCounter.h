//===- bench/AllocCounter.h - Heap-allocation counting ---------*- C++ -*-===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counting interposition of the global allocation functions, enabled by
/// building with -DBAYONET_COUNT_ALLOCS (the BAYONET_COUNT_ALLOCS CMake
/// option). Replacing operator new in the executable interposes for the
/// whole process — the statically linked bayonet library included — so
/// allocsNow() deltas measure the true allocation count of any code
/// region. Include this header from at most one translation unit per
/// binary (the replacement functions are non-inline by requirement).
///
/// Without the define, allocCountingEnabled() is false and allocsNow()
/// returns 0, so call sites need no conditional compilation.
///
//===----------------------------------------------------------------------===//

#ifndef BAYONET_BENCH_ALLOCCOUNTER_H
#define BAYONET_BENCH_ALLOCCOUNTER_H

#include <cstdint>

#ifdef BAYONET_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace bayonet::benchutil {

inline std::atomic<uint64_t> GAllocCount{0};

constexpr bool allocCountingEnabled() { return true; }

/// Total heap allocations the process has performed so far.
inline uint64_t allocsNow() {
  return GAllocCount.load(std::memory_order_relaxed);
}

} // namespace bayonet::benchutil

void *operator new(std::size_t Size) {
  bayonet::benchutil::GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) {
  bayonet::benchutil::GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new(std::size_t Size, std::align_val_t Align) {
  bayonet::benchutil::GAllocCount.fetch_add(1, std::memory_order_relaxed);
  const std::size_t Al = static_cast<std::size_t>(Align);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t Rounded = ((Size ? Size : 1) + Al - 1) / Al * Al;
  if (void *P = std::aligned_alloc(Al, Rounded))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size, std::align_val_t Align) {
  return ::operator new(Size, Align);
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}

#else // !BAYONET_COUNT_ALLOCS

namespace bayonet::benchutil {

constexpr bool allocCountingEnabled() { return false; }
inline uint64_t allocsNow() { return 0; }

} // namespace bayonet::benchutil

#endif // BAYONET_COUNT_ALLOCS

#endif // BAYONET_BENCH_ALLOCCOUNTER_H
