//===- bench/bench_table1_congestion.cpp - Table 1 congestion rows --------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 rows 1-5: probability of congestion under the
/// uniform and deterministic schedulers for the 5-node Figure 2 network,
/// the 6-node Figure 11(a) diamond, and the 30-node diamond chain, with
/// both exact and approximate (SMC-1000) inference.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

struct CongestionCase {
  const char *Label;
  std::string Source;
  const char *PaperExact;
  const char *PaperApprox;
  bool RunExact;
};

std::vector<CongestionCase> &cases() {
  static std::vector<CongestionCase> Cases = {
      {"congestion uni 5 nodes", scenarios::paperExample(false, "uniform"),
       "0.4487", "0.4570", true},
      {"congestion det 5 nodes",
       scenarios::paperExample(false, "deterministic"), "1.0000", "1.0000",
       true},
      {"congestion uni 6 nodes", scenarios::congestionChain(1, "uniform"),
       "0.4441", "0.4650", true},
      {"congestion det 6 nodes",
       scenarios::congestionChain(1, "deterministic"), "1.0000", "1.0000",
       true},
      {"congestion det 30 nodes",
       scenarios::congestionChain(7, "deterministic"), "1.0000", "1.0000",
       true},
  };
  return Cases;
}

void BM_CongestionExact(benchmark::State &State) {
  const CongestionCase &C = cases()[State.range(0)];
  LoadedNetwork Net = mustLoad(C.Source);
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? fmt(V->toDouble()) : ("?" + R.UnsupportedReason);
    benchmark::DoNotOptimize(R);
  }
  addRow(C.Label, "exact", C.PaperExact, Measured, Secs);
}

void BM_CongestionSmc(benchmark::State &State) {
  const CongestionCase &C = cases()[State.range(0)];
  LoadedNetwork Net = mustLoad(C.Source);
  double Value = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Value = R.Value;
    benchmark::DoNotOptimize(R);
  }
  addRow(C.Label, "SMC-1000", C.PaperApprox, fmt(Value), Secs);
}

} // namespace

BENCHMARK(BM_CongestionExact)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CongestionSmc)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Table 1 rows 1-5 (congestion)")
