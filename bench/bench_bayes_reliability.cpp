//===- bench/bench_bayes_reliability.cpp - Section 5.5(b) posteriors ------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 5.5 reliability-with-observations posteriors:
/// the distribution over S0's forwarding strategy (random / always-S1 /
/// always-S2) after observing the exhaustive packet-id sequence (1,3) or
/// (1,2,3) at H1. The paper's exact values:
///   obs (1,3):   rand = 1, det.S1 = 0, det.S2 = 0
///   obs (1,2,3): rand  = 41922792469/95643630613 ~ 0.4383
///                det.S1 = 26873856000/95643630613 ~ 0.2810
///                det.S2 = 26846982144/95643630613 ~ 0.2807
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

struct BayesCase {
  const char *Obs;
  const char *Strategy;
  const char *Paper;
};

const BayesCase Cases[] = {
    {"13", "rand", "1"},
    {"13", "detS1", "0"},
    {"13", "detS2", "0"},
    {"123", "rand", "0.4383"},
    {"123", "detS1", "0.2810"},
    {"123", "detS2", "0.2807"},
};

void BM_BayesReliability(benchmark::State &State) {
  const BayesCase &C = Cases[State.range(0)];
  LoadedNetwork Net =
      mustLoad(scenarios::reliabilityBayes(C.Obs, C.Strategy));
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? (V->toString() + " ~" + fmt(V->toDouble())) : "?";
    benchmark::DoNotOptimize(R);
  }
  addRow(std::string("P(") + C.Strategy + " | obs " + C.Obs + ")", "exact",
         C.Paper, Measured, Secs);
}

} // namespace

BENCHMARK(BM_BayesReliability)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Section 5.5 Bayesian reliability posteriors")
