//===- bench/BenchUtil.h - Shared benchmark helpers ------------*- C++ -*-===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: loading networks from
/// scenario sources, running the engines, and accumulating a
/// paper-vs-measured comparison table that each binary prints after its
/// google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef BAYONET_BENCH_BENCHUTIL_H
#define BAYONET_BENCH_BENCHUTIL_H

#include "api/Bayonet.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace bayonet::benchutil {

/// Loads a network or aborts the benchmark binary.
inline LoadedNetwork mustLoad(const std::string &Source) {
  DiagEngine Diags;
  auto Net = loadNetwork(Source, Diags);
  if (!Net) {
    std::fprintf(stderr, "benchmark network failed to load:\n%s",
                 Diags.toString().c_str());
    std::exit(1);
  }
  return std::move(*Net);
}

/// One row of the final paper-vs-measured comparison table.
struct Row {
  std::string Benchmark;
  std::string Engine;
  std::string Paper;    ///< The value the paper reports.
  std::string Measured; ///< What this reproduction computes.
  double Seconds = 0;   ///< Wall-clock of the measured run.
};

/// Global registry the benchmarks append to.
inline std::vector<Row> &rows() {
  static std::vector<Row> Rows;
  return Rows;
}

inline void addRow(std::string Benchmark, std::string Engine,
                   std::string Paper, std::string Measured, double Seconds) {
  // google-benchmark may invoke a benchmark function several times while
  // estimating iteration counts; keep one row per (benchmark, engine).
  for (Row &R : rows()) {
    if (R.Benchmark == Benchmark && R.Engine == Engine) {
      R.Paper = std::move(Paper);
      R.Measured = std::move(Measured);
      R.Seconds = Seconds;
      return;
    }
  }
  rows().push_back({std::move(Benchmark), std::move(Engine), std::move(Paper),
                    std::move(Measured), Seconds});
}

/// Prints the accumulated comparison table (call after
/// benchmark::RunSpecifiedBenchmarks()).
inline void printComparison(const char *Title) {
  std::printf("\n=== %s: paper vs measured ===\n", Title);
  std::printf("%-36s %-12s %-14s %-20s %10s\n", "benchmark", "engine",
              "paper", "measured", "time[s]");
  for (const Row &R : rows())
    std::printf("%-36s %-12s %-14s %-20s %10.3f\n", R.Benchmark.c_str(),
                R.Engine.c_str(), R.Paper.c_str(), R.Measured.c_str(),
                R.Seconds);
}

/// Formats a double with 4 decimals.
inline std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.4f", V);
  return Buf;
}

/// Standard main: run the registered benchmarks, then print the table.
#define BAYONET_BENCH_MAIN(TITLE)                                            \
  int main(int argc, char **argv) {                                         \
    benchmark::Initialize(&argc, argv);                                     \
    if (benchmark::ReportUnrecognizedArguments(argc, argv))                 \
      return 1;                                                             \
    benchmark::RunSpecifiedBenchmarks();                                    \
    benchmark::Shutdown();                                                  \
    bayonet::benchutil::printComparison(TITLE);                             \
    return 0;                                                               \
  }

} // namespace bayonet::benchutil

#endif // BAYONET_BENCH_BENCHUTIL_H
