//===- bench/BenchUtil.h - Shared benchmark helpers ------------*- C++ -*-===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: loading networks from
/// scenario sources, running the engines, and accumulating a
/// paper-vs-measured comparison table that each binary prints after its
/// google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef BAYONET_BENCH_BENCHUTIL_H
#define BAYONET_BENCH_BENCHUTIL_H

#include "AllocCounter.h"
#include "api/Bayonet.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace bayonet::benchutil {

/// Directory every machine-readable benchmark artifact is written to:
/// $BAYONET_BENCH_OUT when set (scripts/bench_all.sh sets it), the current
/// directory otherwise. The caller is responsible for the directory
/// existing.
inline std::string benchOutDir() {
  const char *Dir = std::getenv("BAYONET_BENCH_OUT");
  return Dir && *Dir ? Dir : ".";
}

/// Joins benchOutDir() with a file name.
inline std::string outPath(const std::string &File) {
  return benchOutDir() + "/" + File;
}

/// The suite name of a bench binary: basename of argv[0] without the
/// "bench_" prefix ("bench/bench_table1_gossip" -> "table1_gossip").
inline std::string suiteName(const char *Argv0) {
  std::string Name = Argv0 ? Argv0 : "unknown";
  size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);
  if (Name.rfind("bench_", 0) == 0)
    Name = Name.substr(6);
  return Name;
}

/// Loads a network or aborts the benchmark binary.
inline LoadedNetwork mustLoad(const std::string &Source) {
  DiagEngine Diags;
  auto Net = loadNetwork(Source, Diags);
  if (!Net) {
    std::fprintf(stderr, "benchmark network failed to load:\n%s",
                 Diags.toString().c_str());
    std::exit(1);
  }
  return std::move(*Net);
}

/// One row of the final paper-vs-measured comparison table.
struct Row {
  std::string Benchmark;
  std::string Engine;
  std::string Paper;    ///< The value the paper reports.
  std::string Measured; ///< What this reproduction computes.
  double Seconds = 0;   ///< Wall-clock of the measured run.
  /// Heap allocations per benchmark iteration, measured when the binary
  /// was built with BAYONET_COUNT_ALLOCS; negative = not measured.
  double AllocsPerIter = -1;
};

/// Global registry the benchmarks append to.
inline std::vector<Row> &rows() {
  static std::vector<Row> Rows;
  return Rows;
}

inline void addRow(std::string Benchmark, std::string Engine,
                   std::string Paper, std::string Measured, double Seconds,
                   double AllocsPerIter = -1) {
  // google-benchmark may invoke a benchmark function several times while
  // estimating iteration counts; keep one row per (benchmark, engine).
  for (Row &R : rows()) {
    if (R.Benchmark == Benchmark && R.Engine == Engine) {
      R.Paper = std::move(Paper);
      R.Measured = std::move(Measured);
      R.Seconds = Seconds;
      R.AllocsPerIter = AllocsPerIter;
      return;
    }
  }
  rows().push_back({std::move(Benchmark), std::move(Engine), std::move(Paper),
                    std::move(Measured), Seconds, AllocsPerIter});
}

/// Prints the accumulated comparison table (call after
/// benchmark::RunSpecifiedBenchmarks()).
inline void printComparison(const char *Title) {
  std::printf("\n=== %s: paper vs measured ===\n", Title);
  std::printf("%-36s %-12s %-14s %-20s %10s\n", "benchmark", "engine",
              "paper", "measured", "time[s]");
  for (const Row &R : rows())
    std::printf("%-36s %-12s %-14s %-20s %10.3f\n", R.Benchmark.c_str(),
                R.Engine.c_str(), R.Paper.c_str(), R.Measured.c_str(),
                R.Seconds);
}

/// Escapes a string for embedding in JSON output.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// Writes the paper-vs-measured comparison table as machine-readable JSON
/// (BENCH_<suite>_rows.json in benchOutDir()), so every bench binary — not
/// just the scaling one — emits a uniform artifact.
inline void writeRowsJson(const char *Argv0) {
  if (rows().empty())
    return;
  std::string Suite = suiteName(Argv0);
  std::string Path = outPath("BENCH_" + Suite + "_rows.json");
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\"suite\": \"%s\", \"rows\": [\n", Suite.c_str());
  const std::vector<Row> &Rows = rows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"engine\": \"%s\", "
                 "\"paper\": \"%s\", \"measured\": \"%s\", "
                 "\"seconds\": %.6f",
                 jsonEscape(R.Benchmark).c_str(), jsonEscape(R.Engine).c_str(),
                 jsonEscape(R.Paper).c_str(), jsonEscape(R.Measured).c_str(),
                 R.Seconds);
    if (R.AllocsPerIter >= 0)
      std::fprintf(F, ", \"allocs_per_iter\": %.1f", R.AllocsPerIter);
    std::fprintf(F, "}%s\n", I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]}\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path.c_str(), Rows.size());
}

/// Formats a double with 4 decimals.
inline std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.4f", V);
  return Buf;
}

/// One timing of a benchmark at a specific thread count. The scaling
/// benchmarks record each workload once serial and once parallel; the
/// pairs land in BENCH_scaling.json so the 1-thread vs N-thread speedup
/// is machine-readable.
struct ScalingRow {
  std::string Benchmark;
  unsigned Threads = 1;
  double Seconds = 0;
  std::string Value; ///< Engine result — must match across thread counts.
};

inline std::vector<ScalingRow> &scalingRows() {
  static std::vector<ScalingRow> Rows;
  return Rows;
}

inline void addScalingRow(std::string Benchmark, unsigned Threads,
                          double Seconds, std::string Value) {
  for (ScalingRow &R : scalingRows()) {
    if (R.Benchmark == Benchmark && R.Threads == Threads) {
      R.Seconds = Seconds;
      R.Value = std::move(Value);
      return;
    }
  }
  scalingRows().push_back(
      {std::move(Benchmark), Threads, Seconds, std::move(Value)});
}

/// Writes the collected thread-scaling rows as a JSON array (no-op when
/// the binary recorded none). Rows with Threads > 1 carry the speedup
/// against the matching 1-thread row.
inline void writeScalingJson(const char *Path) {
  if (scalingRows().empty())
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "[\n");
  const std::vector<ScalingRow> &Rows = scalingRows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ScalingRow &R = Rows[I];
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"threads\": %u, "
                 "\"seconds\": %.6f, \"value\": \"%s\"",
                 R.Benchmark.c_str(), R.Threads, R.Seconds, R.Value.c_str());
    if (R.Threads > 1) {
      for (const ScalingRow &Base : Rows)
        if (Base.Benchmark == R.Benchmark && Base.Threads == 1 &&
            R.Seconds > 0) {
          std::fprintf(F, ", \"speedup_vs_1thread\": %.3f",
                       Base.Seconds / R.Seconds);
          break;
        }
    }
    std::fprintf(F, "}%s\n", I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path, Rows.size());
}

/// One governance-overhead measurement: the same workload run ungoverned
/// and with a (never-tripping) budget tracker attached. The charging
/// fast-path is the only difference, so the pair bounds the cost of
/// resource governance; the target is under 2% overhead.
struct BudgetRow {
  std::string Benchmark;
  double UngovernedSeconds = 0;
  double GovernedSeconds = 0;
};

inline std::vector<BudgetRow> &budgetRows() {
  static std::vector<BudgetRow> Rows;
  return Rows;
}

inline void addBudgetRow(std::string Benchmark, double UngovernedSeconds,
                         double GovernedSeconds) {
  for (BudgetRow &R : budgetRows()) {
    if (R.Benchmark == Benchmark) {
      R.UngovernedSeconds = UngovernedSeconds;
      R.GovernedSeconds = GovernedSeconds;
      return;
    }
  }
  budgetRows().push_back(
      {std::move(Benchmark), UngovernedSeconds, GovernedSeconds});
}

/// Writes the governance-overhead rows as a JSON array (no-op when the
/// binary recorded none).
inline void writeBudgetJson(const char *Path) {
  if (budgetRows().empty())
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "[\n");
  const std::vector<BudgetRow> &Rows = budgetRows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    const BudgetRow &R = Rows[I];
    double Pct = R.UngovernedSeconds > 0
                     ? (R.GovernedSeconds / R.UngovernedSeconds - 1.0) * 100.0
                     : 0.0;
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"ungoverned_s\": %.6f, "
                 "\"governed_s\": %.6f, \"overhead_pct\": %.2f}%s\n",
                 R.Benchmark.c_str(), R.UngovernedSeconds, R.GovernedSeconds,
                 Pct, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path, Rows.size());
}

/// One observability-overhead measurement: the same workload run with no
/// ObsContext attached (the disabled path: one null-check branch per probe
/// site) and with tracing + metrics fully enabled. Targets: the disabled
/// path within the noise floor (< 1%), enabled under 5%.
struct ObsRow {
  std::string Benchmark;
  double DisabledSeconds = 0;
  double EnabledSeconds = 0;
};

inline std::vector<ObsRow> &obsRows() {
  static std::vector<ObsRow> Rows;
  return Rows;
}

inline void addObsRow(std::string Benchmark, double DisabledSeconds,
                      double EnabledSeconds) {
  for (ObsRow &R : obsRows()) {
    if (R.Benchmark == Benchmark) {
      R.DisabledSeconds = DisabledSeconds;
      R.EnabledSeconds = EnabledSeconds;
      return;
    }
  }
  obsRows().push_back(
      {std::move(Benchmark), DisabledSeconds, EnabledSeconds});
}

/// Writes the observability-overhead rows as a JSON array (no-op when the
/// binary recorded none).
inline void writeObsJson(const char *Path) {
  if (obsRows().empty())
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "[\n");
  const std::vector<ObsRow> &Rows = obsRows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ObsRow &R = Rows[I];
    double Pct = R.DisabledSeconds > 0
                     ? (R.EnabledSeconds / R.DisabledSeconds - 1.0) * 100.0
                     : 0.0;
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"obs_disabled_s\": %.6f, "
                 "\"obs_enabled_s\": %.6f, \"overhead_pct\": %.2f}%s\n",
                 R.Benchmark.c_str(), R.DisabledSeconds, R.EnabledSeconds,
                 Pct, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path, Rows.size());
}

/// One checkpoint-overhead measurement: the same workload run with no
/// checkpointer and with a Checkpointer writing durable snapshots at the
/// default `--checkpoint-every` stride (32). The pair bounds what durable
/// checkpoint/restore costs a run that never crashes; the target is under
/// 3% overhead.
struct SnapshotRow {
  std::string Benchmark;
  double PlainSeconds = 0;
  double CheckpointedSeconds = 0;
  uint64_t SnapshotsWritten = 0;
};

inline std::vector<SnapshotRow> &snapshotRows() {
  static std::vector<SnapshotRow> Rows;
  return Rows;
}

inline void addSnapshotRow(std::string Benchmark, double PlainSeconds,
                           double CheckpointedSeconds,
                           uint64_t SnapshotsWritten) {
  for (SnapshotRow &R : snapshotRows()) {
    if (R.Benchmark == Benchmark) {
      R.PlainSeconds = PlainSeconds;
      R.CheckpointedSeconds = CheckpointedSeconds;
      R.SnapshotsWritten = SnapshotsWritten;
      return;
    }
  }
  snapshotRows().push_back({std::move(Benchmark), PlainSeconds,
                            CheckpointedSeconds, SnapshotsWritten});
}

/// Writes the checkpoint-overhead rows as a JSON array (no-op when the
/// binary recorded none).
inline void writeSnapshotJson(const char *Path) {
  if (snapshotRows().empty())
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "[\n");
  const std::vector<SnapshotRow> &Rows = snapshotRows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    const SnapshotRow &R = Rows[I];
    double Pct = R.PlainSeconds > 0
                     ? (R.CheckpointedSeconds / R.PlainSeconds - 1.0) * 100.0
                     : 0.0;
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"plain_s\": %.6f, "
                 "\"checkpointed_s\": %.6f, \"snapshots_written\": %llu, "
                 "\"overhead_pct\": %.2f}%s\n",
                 R.Benchmark.c_str(), R.PlainSeconds, R.CheckpointedSeconds,
                 static_cast<unsigned long long>(R.SnapshotsWritten), Pct,
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path, Rows.size());
}

/// One serve-overhead measurement: the same observed workload with no
/// introspection server and with one live (bound, threads parked, never
/// scraped). The pair bounds what `--serve` costs a run nobody scrapes;
/// the target is under 2% overhead.
struct ServeRow {
  std::string Benchmark;
  double UnservedSeconds = 0;
  double ServedSeconds = 0;
};

inline std::vector<ServeRow> &serveRows() {
  static std::vector<ServeRow> Rows;
  return Rows;
}

inline void addServeRow(std::string Benchmark, double UnservedSeconds,
                        double ServedSeconds) {
  for (ServeRow &R : serveRows()) {
    if (R.Benchmark == Benchmark) {
      R.UnservedSeconds = UnservedSeconds;
      R.ServedSeconds = ServedSeconds;
      return;
    }
  }
  serveRows().push_back(
      {std::move(Benchmark), UnservedSeconds, ServedSeconds});
}

/// Writes the serve-overhead rows as a JSON array (no-op when the binary
/// recorded none).
inline void writeServeJson(const char *Path) {
  if (serveRows().empty())
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "[\n");
  const std::vector<ServeRow> &Rows = serveRows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ServeRow &R = Rows[I];
    double Pct = R.UnservedSeconds > 0
                     ? (R.ServedSeconds / R.UnservedSeconds - 1.0) * 100.0
                     : 0.0;
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"unserved_s\": %.6f, "
                 "\"served_s\": %.6f, \"overhead_pct\": %.2f}%s\n",
                 R.Benchmark.c_str(), R.UnservedSeconds, R.ServedSeconds,
                 Pct, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path, Rows.size());
}

/// One profiler-overhead measurement: the same workload with no profiler
/// attached (every charge site is one null-check branch) and with the
/// source-attributed cost profiler fully live — attribution stack, lane
/// shard drains, and board publishes. Targets: the off path within the
/// noise floor (~0%), on under 3%.
struct ProfileRow {
  std::string Benchmark;
  std::string Mode; // "on" | "off"
  double BaselineSeconds = 0;
  double ProfiledSeconds = 0;
};

inline std::vector<ProfileRow> &profileRows() {
  static std::vector<ProfileRow> Rows;
  return Rows;
}

inline void addProfileRow(std::string Benchmark, std::string Mode,
                          double BaselineSeconds, double ProfiledSeconds) {
  for (ProfileRow &R : profileRows()) {
    if (R.Benchmark == Benchmark) {
      R.Mode = std::move(Mode);
      R.BaselineSeconds = BaselineSeconds;
      R.ProfiledSeconds = ProfiledSeconds;
      return;
    }
  }
  profileRows().push_back({std::move(Benchmark), std::move(Mode),
                           BaselineSeconds, ProfiledSeconds});
}

/// Writes the profiler-overhead rows as a JSON array (no-op when the
/// binary recorded none).
inline void writeProfileJson(const char *Path) {
  if (profileRows().empty())
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "[\n");
  const std::vector<ProfileRow> &Rows = profileRows();
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ProfileRow &R = Rows[I];
    double Pct = R.BaselineSeconds > 0
                     ? (R.ProfiledSeconds / R.BaselineSeconds - 1.0) * 100.0
                     : 0.0;
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"profiling\": \"%s\", "
                 "\"baseline_s\": %.6f, \"profiled_s\": %.6f, "
                 "\"overhead_pct\": %.2f}%s\n",
                 R.Benchmark.c_str(), R.Mode.c_str(), R.BaselineSeconds,
                 R.ProfiledSeconds, Pct, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path, Rows.size());
}

/// Standard main: run the registered benchmarks, then print the table and
/// write every machine-readable artifact into benchOutDir().
#define BAYONET_BENCH_MAIN(TITLE)                                            \
  int main(int argc, char **argv) {                                         \
    benchmark::Initialize(&argc, argv);                                     \
    if (benchmark::ReportUnrecognizedArguments(argc, argv))                 \
      return 1;                                                             \
    benchmark::RunSpecifiedBenchmarks();                                    \
    benchmark::Shutdown();                                                  \
    bayonet::benchutil::printComparison(TITLE);                             \
    bayonet::benchutil::writeRowsJson(argv[0]);                             \
    bayonet::benchutil::writeScalingJson(                                   \
        bayonet::benchutil::outPath("BENCH_scaling.json").c_str());         \
    bayonet::benchutil::writeBudgetJson(                                    \
        bayonet::benchutil::outPath("BENCH_budget.json").c_str());          \
    bayonet::benchutil::writeObsJson(                                       \
        bayonet::benchutil::outPath("BENCH_obs.json").c_str());             \
    bayonet::benchutil::writeSnapshotJson(                                  \
        bayonet::benchutil::outPath("BENCH_snapshot.json").c_str());        \
    bayonet::benchutil::writeServeJson(                                     \
        bayonet::benchutil::outPath("BENCH_serve.json").c_str());           \
    bayonet::benchutil::writeProfileJson(                                   \
        bayonet::benchutil::outPath("BENCH_profile.json").c_str());         \
    return 0;                                                               \
  }

} // namespace bayonet::benchutil

#endif // BAYONET_BENCH_BENCHUTIL_H
