//===- bench/bench_ablation.cpp - Design-choice ablations -----------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices called out in DESIGN.md:
///  1. configuration merging on/off in the exact engine (the aggregate
///     trace semantics vs raw trace enumeration);
///  2. SMC particle-count sweep (accuracy/time trade-off, the paper uses
///     1000);
///  3. scheduler choice (uniform vs deterministic vs fair round-robin) on
///     the congestion query — the Section 5.1 observation that the
///     deterministic scheduler "considers only runs in which congestion
///     occurs".
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

#include <cmath>

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

void BM_MergeAblation(benchmark::State &State) {
  bool Merge = State.range(0) == 1;
  LoadedNetwork Net = mustLoad(scenarios::paperExample());
  ExactOptions Opts;
  Opts.MergeStates = Merge;
  // Without merging the frontier explodes combinatorially; cap the work so
  // the ablation terminates, and report how far it got.
  if (!Merge)
    Opts.MaxFrontier = 2'000'000;
  size_t Expanded = 0, MaxFrontier = 0;
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Expanded = R.ConfigsExpanded;
    MaxFrontier = R.MaxFrontierSize;
    auto V = R.concreteValue();
    Measured = R.QueryUnsupported ? "frontier blow-up"
               : V                ? fmt(V->toDouble())
                                  : "?";
    benchmark::DoNotOptimize(R);
  }
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%s cfg=%zu peak=%zu", Measured.c_str(),
                Expanded, MaxFrontier);
  addRow(Merge ? "exact merge=on (Fig 2)" : "exact merge=off (Fig 2)",
         "exact", "0.4487", Buf, Secs);
}

void BM_ParticleSweep(benchmark::State &State) {
  unsigned Particles = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::paperExample());
  const double Truth = 0.448683; // Exact engine result.
  SampleOptions Opts;
  Opts.Particles = Particles;
  double Err = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec, Opts).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Err = std::abs(R.Value - Truth);
    benchmark::DoNotOptimize(R);
  }
  addRow("SMC particles=" + std::to_string(Particles), "SMC",
         "|err| shrinks ~1/sqrt(N)", "|err|=" + fmt(Err), Secs);
}

void BM_SchedulerAblation(benchmark::State &State) {
  const char *Scheds[] = {"uniform", "deterministic", "roundrobin"};
  const char *Sched = Scheds[State.range(0)];
  LoadedNetwork Net = mustLoad(scenarios::paperExample(false, Sched));
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
  }
  const char *Paper = State.range(0) == 0   ? "0.4487"
                      : State.range(0) == 1 ? "1.0000"
                                            : "(fair: 0)";
  addRow(std::string("congestion sched=") + Sched, "exact", Paper, Measured,
         Secs);
}

} // namespace

BENCHMARK(BM_MergeAblation)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParticleSweep)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SchedulerAblation)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Design-choice ablations")
