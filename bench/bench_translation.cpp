//===- bench/bench_translation.cpp - Section 4 translation metrics --------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 4 in-text observation that Bayonet programs are
/// substantially smaller than the generated probabilistic programs (about
/// 2x for PSI and up to 10x for WebPPL), and times the translation itself
/// for every benchmark network.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"
#include "translate/Translator.h"
#include "translate/WebPplEmitter.h"

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

size_t countLines(const std::string &Text) {
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n';
  return Lines;
}

struct TranslationCase {
  const char *Label;
  std::string Source;
};

std::vector<TranslationCase> &cases() {
  static std::vector<TranslationCase> Cases = {
      {"Fig 2 example", scenarios::paperExample()},
      {"congestion 6 nodes", scenarios::congestionChain(1)},
      {"congestion 30 nodes", scenarios::congestionChain(7)},
      {"reliability 6 nodes", scenarios::reliabilityChain(1)},
      {"gossip 4 nodes", scenarios::gossip(4)},
      {"load-balancing", scenarios::loadBalancing("1001H")},
      {"reliability Bayes", scenarios::reliabilityBayes("123", "rand")},
  };
  return Cases;
}

void BM_Translate(benchmark::State &State) {
  const TranslationCase &C = cases()[State.range(0)];
  LoadedNetwork Net = mustLoad(C.Source);
  size_t BayLines = countLines(C.Source);
  size_t PsiLines = 0, WppLines = 0;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    DiagEngine Diags;
    auto Psi = translateToPsi(Net.Spec, Diags);
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    if (Psi) {
      PsiLines = countLines(printPsiProgram(*Psi));
      WppLines = countLines(emitWebPpl(*Psi));
    }
    benchmark::DoNotOptimize(Psi);
  }
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "bay=%zu psi=%zu (%.1fx) wppl=%zu (%.1fx)",
                BayLines, PsiLines, double(PsiLines) / BayLines, WppLines,
                double(WppLines) / BayLines);
  addRow(C.Label, "translate", "psi ~2x, wppl ~10x", Buf, Secs);
}

} // namespace

BENCHMARK(BM_Translate)->DenseRange(0, 6)->Unit(benchmark::kMicrosecond);

BAYONET_BENCH_MAIN("Section 4 translation size/time")
