//===- bench/bench_table1_gossip.cpp - Table 1 gossip rows ----------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 rows 10-13: expected number of infected nodes for
/// the gossip protocol on complete graphs. Exact inference for K=4 (both
/// schedulers; the paper's 94/27 = 3.4815), SMC for K=20 and K=30 where
/// the paper's exact solver timed out.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

void BM_GossipExact4(benchmark::State &State) {
  const char *Sched = State.range(0) == 0 ? "uniform" : "deterministic";
  LoadedNetwork Net = mustLoad(scenarios::gossip(4, Sched));
  std::string Measured;
  double Secs = 0;
  uint64_t Allocs0 = allocsNow(), Iters = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? (V->toString() + " ~" + fmt(V->toDouble())) : "?";
    benchmark::DoNotOptimize(R);
    ++Iters;
  }
  double AllocsPerIter =
      allocCountingEnabled() && Iters
          ? static_cast<double>(allocsNow() - Allocs0) / Iters
          : -1;
  addRow(std::string("gossip ") + (State.range(0) == 0 ? "uni" : "det") +
             " 4 nodes",
         "exact", "94/27 ~3.4815", Measured, Secs, AllocsPerIter);
}

void BM_GossipSmc(benchmark::State &State) {
  unsigned K = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::gossip(K));
  double Value = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Value = R.Value;
    benchmark::DoNotOptimize(R);
  }
  const char *Paper = K == 4    ? "3.4760"
                      : K == 20 ? "16.0020"
                      : K == 30 ? "23.9910"
                                : "-";
  addRow("gossip uni " + std::to_string(K) + " nodes", "SMC-1000", Paper,
         fmt(Value), Secs);
}

} // namespace

BENCHMARK(BM_GossipExact4)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GossipSmc)
    ->Arg(4)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Table 1 rows 10-13 (gossip)")
