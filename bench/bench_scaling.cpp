//===- bench/bench_scaling.cpp - Section 5.4 network-size scaling ---------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 5.4 "Performance and Network Size" study as
/// per-size series: exact and approximate inference swept over network
/// sizes up to the paper's 30 nodes (the size covering 70% of the
/// production networks in the Internet Topology Zoo analysis the paper
/// cites), on three topology families: diamond chains (congestion and
/// reliability), rings, and complete-graph gossip.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "obs/Introspect.h"
#include "scenarios/Scenarios.h"
#include "support/Snapshot.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

/// The parallel lane count the scaling study compares against serial: at
/// least 2 so the sharded code path runs even on a single-core box.
unsigned scalingThreads() {
  return std::max(2u, ThreadPool::defaultThreads());
}

/// Runs the exact engine on \p Net with \p Threads lanes, returning the
/// wall-clock seconds and the rendered result value.
double timedExact(const LoadedNetwork &Net, unsigned Threads,
                  std::string &Value) {
  ExactOptions Opts;
  Opts.Threads = Threads;
  auto T0 = std::chrono::steady_clock::now();
  ExactResult R = ExactEngine(Net.Spec, Opts).run();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  auto V = R.concreteValue();
  Value = V ? fmt(V->toDouble()) : "?";
  benchmark::DoNotOptimize(R);
  return Secs;
}

void BM_ReliabilityScaling(benchmark::State &State) {
  unsigned Diamonds = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(Diamonds));
  unsigned Par = scalingThreads();
  std::string Serial, Parallel;
  double Secs1 = 0, SecsN = 0;
  for (auto _ : State) {
    Secs1 = timedExact(Net, 1, Serial);
    SecsN = timedExact(Net, Par, Parallel);
  }
  if (Parallel != Serial)
    Serial += " (PARALLEL MISMATCH: " + Parallel + ")";
  std::string Name =
      "reliability chain, " + std::to_string(4 * Diamonds + 2) + " nodes";
  addRow(Name, "exact", "(1-1/2000)^D", Serial, Secs1);
  addScalingRow(Name, 1, Secs1, Serial);
  addScalingRow(Name, Par, SecsN, Parallel);
}

void BM_CongestionScalingSmc(benchmark::State &State) {
  unsigned Diamonds = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::congestionChain(Diamonds));
  double Value = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Value = R.Value;
    benchmark::DoNotOptimize(R);
  }
  addRow("congestion chain, " + std::to_string(4 * Diamonds + 2) + " nodes",
         "SMC-1000", "grows with size", fmt(Value), Secs);
}

void BM_RingScaling(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::ringReliability(N));
  unsigned Par = scalingThreads();
  std::string Serial, Parallel;
  double Secs1 = 0, SecsN = 0;
  for (auto _ : State) {
    Secs1 = timedExact(Net, 1, Serial);
    SecsN = timedExact(Net, Par, Parallel);
  }
  if (Parallel != Serial)
    Serial += " (PARALLEL MISMATCH: " + Parallel + ")";
  // Closed form (99/100)^(N-1).
  Rational Expected(1);
  for (unsigned I = 1; I < N; ++I)
    Expected *= Rational(BigInt(99), BigInt(100));
  std::string Name = "ring, " + std::to_string(N) + " nodes";
  addRow(Name, "exact", fmt(Expected.toDouble()), Serial, Secs1);
  addScalingRow(Name, 1, Secs1, Serial);
  addScalingRow(Name, Par, SecsN, Parallel);
}

void BM_StarScaling(benchmark::State &State) {
  unsigned Leaves = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::starIncast(Leaves));
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? (V->toString() + " ~" + fmt(V->toDouble())) : "timeout";
    benchmark::DoNotOptimize(R);
  }
  addRow("star incast, " + std::to_string(Leaves) + " leaves", "exact",
         "<= leaves (queue drops)", Measured, Secs);
}

void BM_GossipScalingSmc(benchmark::State &State) {
  unsigned K = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::gossip(K));
  double Value = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Value = R.Value;
    benchmark::DoNotOptimize(R);
  }
  addRow("gossip, " + std::to_string(K) + " nodes", "SMC-1000",
         "~0.8*K infected", fmt(Value), Secs);
}

/// Measures what attaching a (never-tripping) budget tracker costs the
/// exact engine: the charging fast-path plus one checkpoint per scheduler
/// step. Target: under 2% against the ungoverned run (BENCH_budget.json).
void BM_GovernanceOverhead(benchmark::State &State) {
  unsigned Diamonds = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(Diamonds));
  BudgetLimits Generous;
  Generous.MaxStates = uint64_t(1) << 40;
  Generous.MaxFrontier = uint64_t(1) << 40;
  Generous.MaxMerges = uint64_t(1) << 40;
  Generous.MaxBytes = uint64_t(1) << 50;
  Generous.MaxSchedSteps = uint64_t(1) << 40;
  std::string Ungoverned, Governed;
  double BestUn = 1e99, BestGov = 1e99;
  for (auto _ : State) {
    BestUn = std::min(BestUn, timedExact(Net, 1, Ungoverned));
    ExactOptions Opts;
    Opts.Threads = 1;
    Opts.Budget = std::make_shared<BudgetTracker>(Generous);
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    BestGov = std::min(
        BestGov,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count());
    auto V = R.concreteValue();
    Governed = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
  }
  if (Governed != Ungoverned)
    Ungoverned += " (GOVERNED MISMATCH: " + Governed + ")";
  std::string Name = "governance overhead, reliability " +
                     std::to_string(4 * Diamonds + 2) + " nodes";
  addRow(Name, "exact", "< 2% overhead", Ungoverned, BestGov);
  addBudgetRow(Name, BestUn, BestGov);
}

/// Median of \p V (destructive); 0 when empty.
double medianOf(std::vector<double> V) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

/// Cost of durable checkpointing on the exact hot path: the same workload
/// with no checkpointer and with a Checkpointer writing fsync'd snapshots
/// at the default `--checkpoint-every` stride (32). Each iteration times
/// the pair back-to-back and the row reports the median of the paired
/// differences against the median plain runtime: scheduling noise on a
/// shared box is several times the true cost, but it hits both halves of
/// a pair alike, so the paired median converges where min-of-iterations
/// (two independent minima) keeps bouncing. The answers must match
/// bit-for-bit — checkpointing must never perturb the run it protects.
/// Target: under 3% overhead (BENCH_snapshot.json).
void BM_CheckpointOverhead(benchmark::State &State) {
  unsigned Diamonds = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(Diamonds));
  std::string SnapPath = outPath(".bench_checkpoint.snap");
  std::string Plain, Checkpointed;
  std::vector<double> PlainTimes, Deltas;
  uint64_t Writes = 0;
  for (auto _ : State) {
    double PlainSecs = timedExact(Net, 1, Plain);
    CheckpointOptions CO;
    CO.OutPath = SnapPath; // Every stays at the CLI default stride (32).
    ExactOptions Opts;
    Opts.Threads = 1;
    Opts.Checkpoint = std::make_shared<Checkpointer>(CO);
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    double CkSecs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    PlainTimes.push_back(PlainSecs);
    Deltas.push_back(CkSecs - PlainSecs);
    Writes = Opts.Checkpoint->writesDone();
    auto V = R.concreteValue();
    Checkpointed = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
  }
  std::remove(SnapPath.c_str());
  std::remove((SnapPath + ".prev").c_str());
  if (Checkpointed != Plain)
    Plain += " (CHECKPOINTED MISMATCH: " + Checkpointed + ")";
  double MedPlain = medianOf(std::move(PlainTimes));
  // A negative median difference means the cost is below the noise floor.
  double MedCk = MedPlain + std::max(0.0, medianOf(std::move(Deltas)));
  std::string Name = "checkpoint overhead, reliability " +
                     std::to_string(4 * Diamonds + 2) + " nodes";
  addRow(Name, "exact", "< 3% overhead", Plain, MedCk);
  addSnapshotRow(Name, MedPlain, MedCk, Writes);
}

// Cost of the observability layer on the exact hot path: the same
// workload with no ObsContext (every probe site is one null-check branch)
// and with tracing + metrics fully live. Serial, min-of-iterations, and
// the answers must match bit-for-bit — observation must never perturb.
void BM_ObsOverhead(benchmark::State &State) {
  unsigned Diamonds = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(Diamonds));
  std::string Disabled, Enabled;
  double BestOff = 1e99, BestOn = 1e99;
  for (auto _ : State) {
    BestOff = std::min(BestOff, timedExact(Net, 1, Disabled));
    ExactOptions Opts;
    Opts.Threads = 1;
    Opts.Obs = std::make_shared<ObsContext>(true, true);
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    BestOn = std::min(
        BestOn,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count());
    auto V = R.concreteValue();
    Enabled = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
  }
  if (Enabled != Disabled)
    Disabled += " (OBSERVED MISMATCH: " + Enabled + ")";
  std::string Name = "obs overhead, reliability " +
                     std::to_string(4 * Diamonds + 2) + " nodes";
  addRow(Name, "exact", "< 5% enabled", Disabled, BestOn);
  addObsRow(Name, BestOff, BestOn);
}

/// Cost of the live introspection server on an observed exact run: the
/// same workload with tracing + metrics live and no server, then with an
/// IntrospectServer bound on an ephemeral loopback port but never
/// scraped. The only mid-run cost `--serve` adds to the engines is the
/// seqlock board publish at serial boundaries (the handler threads park
/// in poll/condvar waits), so an unscraped server must be free. Paired
/// median, same as BM_CheckpointOverhead: each iteration times the pair
/// back-to-back so scheduling noise cancels. The answers must match
/// bit-for-bit. Target: under 2% overhead (BENCH_serve.json).
void BM_ServeOverhead(benchmark::State &State) {
  unsigned Diamonds = static_cast<unsigned>(State.range(0));
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(Diamonds));
  std::string Unserved, Served;
  std::vector<double> PlainTimes, Deltas;
  auto timedObserved = [&](const std::shared_ptr<ObsContext> &Ctx,
                           std::string &Value) {
    ExactOptions Opts;
    Opts.Threads = 1;
    Opts.Obs = Ctx;
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    double Secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    auto V = R.concreteValue();
    Value = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
    return Secs;
  };
  for (auto _ : State) {
    double PlainSecs =
        timedObserved(std::make_shared<ObsContext>(true, true), Unserved);
    auto Ctx = std::make_shared<ObsContext>(true, true);
    IntrospectServer Server(Ctx);
    std::string Err;
    if (!Server.start("127.0.0.1:0", Err)) {
      State.SkipWithError(("cannot bind loopback: " + Err).c_str());
      return;
    }
    double ServedSecs = timedObserved(Ctx, Served);
    Server.stop();
    PlainTimes.push_back(PlainSecs);
    Deltas.push_back(ServedSecs - PlainSecs);
  }
  if (Served != Unserved)
    Unserved += " (SERVED MISMATCH: " + Served + ")";
  double MedPlain = medianOf(std::move(PlainTimes));
  // A negative median difference means the cost is below the noise floor.
  double MedServed = MedPlain + std::max(0.0, medianOf(std::move(Deltas)));
  std::string Name = "serve overhead, reliability " +
                     std::to_string(4 * Diamonds + 2) + " nodes";
  addRow(Name, "exact", "< 2% overhead", Unserved, MedServed);
  addServeRow(Name, MedPlain, MedServed);
}

/// Cost of the source-attributed cost profiler on the exact hot path.
/// Arg 0 ("off"): the same workload with no profiler vs an ObsContext
/// carrying no profiler either — the off path is one null-check branch
/// per charge site and must be free (~0%). Arg 1 ("on"): no profiler vs
/// the profiler fully live — attribution stack, per-lane shard charges,
/// serial drains, and a board publish per step. Paired median, same as
/// BM_CheckpointOverhead: each iteration times the pair back-to-back so
/// scheduling noise cancels. The answers must match bit-for-bit —
/// attribution must never perturb. Target: under 3% overhead with the
/// profiler on (BENCH_profile.json).
void BM_ProfileOverhead(benchmark::State &State) {
  bool ProfileOn = State.range(0) == 1;
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(10));
  std::string Plain, Profiled;
  std::vector<double> PlainTimes, Deltas;
  for (auto _ : State) {
    double PlainSecs = timedExact(Net, 1, Plain);
    ExactOptions Opts;
    Opts.Threads = 1;
    Opts.Obs = std::make_shared<ObsContext>(
        /*Trace=*/false, /*Metrics=*/false, /*Diag=*/false, ProfileOn);
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec, Opts).run();
    double ProfSecs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    PlainTimes.push_back(PlainSecs);
    Deltas.push_back(ProfSecs - PlainSecs);
    auto V = R.concreteValue();
    Profiled = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
  }
  if (Profiled != Plain)
    Plain += " (PROFILED MISMATCH: " + Profiled + ")";
  double MedPlain = medianOf(std::move(PlainTimes));
  // A negative median difference means the cost is below the noise floor.
  double MedProf = MedPlain + std::max(0.0, medianOf(std::move(Deltas)));
  std::string Name =
      std::string("profile overhead ") + (ProfileOn ? "on" : "off") +
      ", reliability 42 nodes";
  addRow(Name, "exact", ProfileOn ? "< 3% overhead" : "~ 0% overhead",
         Plain, MedProf);
  addProfileRow(Name, ProfileOn ? "on" : "off", MedPlain, MedProf);
}

} // namespace

BENCHMARK(BM_ReliabilityScaling)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CongestionScalingSmc)
    ->DenseRange(1, 7, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RingScaling)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StarScaling)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GossipScalingSmc)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Arg(25)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GovernanceOverhead)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObsOverhead)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointOverhead)
    ->Arg(10)
    ->MinTime(4.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeOverhead)
    ->Arg(10)
    ->MinTime(4.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfileOverhead)
    ->DenseRange(0, 1)
    ->MinTime(4.0)
    ->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Section 5.4 scaling with network size")
