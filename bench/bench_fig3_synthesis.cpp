//===- bench/bench_fig3_synthesis.cpp - Figure 3 parameter synthesis ------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 3 of the paper: the probability of congestion as a
/// piecewise function of the symbolic link costs COST_01, COST_02, COST_21,
/// with the three regions and their exact rational values, plus the
/// synthesis of concrete minimizing costs (Section 2.3).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

using namespace bayonet;
using namespace bayonet::benchutil;

static void BM_Figure3Symbolic(benchmark::State &State) {
  LoadedNetwork Net = mustLoad(scenarios::paperExample(/*Symbolic=*/true));
  std::vector<ProbCase> Cases;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Cases = R.cases();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    benchmark::DoNotOptimize(Cases);
  }
  // Figure 3's three rows keyed by the relation of COST_01 to
  // COST_02 + COST_21.
  for (const ProbCase &C : Cases) {
    std::string Region = C.Region.toString(Net.Spec.Params);
    const char *Paper = "?";
    std::string Label;
    if (Region.find("==") != std::string::npos) {
      Paper = "0.4487";
      Label = "Fig3: COST_01 == COST_02+COST_21";
    } else if (Region == "{COST_01 - COST_02 - COST_21 < 0}") {
      Paper = "0.4519";
      Label = "Fig3: COST_01 <  COST_02+COST_21";
    } else {
      Paper = "0.4787";
      Label = "Fig3: COST_01 >  COST_02+COST_21";
    }
    addRow(Label, "exact-sym", Paper,
           C.Value.toString() + " ~" + fmt(C.Value.toDouble()), Secs);
  }
  // Synthesis: pick the minimizing region and a concrete cost vector.
  if (!Cases.empty()) {
    const ProbCase *Best = &Cases[0];
    for (const ProbCase &C : Cases)
      if (C.Value < Best->Value)
        Best = &C;
    ConstraintSet Wanted = Best->Region;
    for (unsigned I = 0; I < Net.Spec.Params.size(); ++I)
      Wanted.add(Constraint(LinExpr(Rational(1)) - LinExpr::param(I),
                            RelKind::LE));
    auto Model = Wanted.findModel(Net.Spec.Params.size());
    std::string Synth = "no model";
    if (Model) {
      Synth.clear();
      for (unsigned I = 0; I < Net.Spec.Params.size(); ++I) {
        if (I)
          Synth += ",";
        Synth += (*Model)[I].toString();
      }
    }
    addRow("Fig3: synthesized (C01,C02,C21)", "synthesis",
           "equality region", Synth, 0.0);
  }
}
BENCHMARK(BM_Figure3Symbolic)->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Figure 3 parameter synthesis")
