//===- bench/bench_table1_reliability.cpp - Table 1 reliability rows ------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 rows 6-9: reliability of packet delivery across the
/// Figure 11(b) diamond (6 nodes, 0.9995) and the 30-node diamond chain
/// (0.9965), exact and approximate. The paper lists each size twice (two
/// runs); we reproduce that with two sampler seeds.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

struct ReliabilityCase {
  const char *Label;
  unsigned Diamonds;
  const char *PaperExact;
  const char *PaperApprox;
  uint64_t Seed;
};

const ReliabilityCase Cases[] = {
    {"reliability uni 6 nodes (run 1)", 1, "0.9995", "0.9990", 0x5eed},
    {"reliability uni 6 nodes (run 2)", 1, "0.9995", "1.0000", 0xbeef},
    {"reliability uni 30 nodes (run 1)", 7, "0.9965", "0.9940", 0x5eed},
    {"reliability uni 30 nodes (run 2)", 7, "0.9965", "0.9980", 0xbeef},
};

void BM_ReliabilityExact(benchmark::State &State) {
  const ReliabilityCase &C = Cases[State.range(0)];
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(C.Diamonds));
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
  }
  addRow(C.Label, "exact", C.PaperExact, Measured, Secs);
}

void BM_ReliabilitySmc(benchmark::State &State) {
  const ReliabilityCase &C = Cases[State.range(0)];
  LoadedNetwork Net = mustLoad(scenarios::reliabilityChain(C.Diamonds));
  SampleOptions Opts;
  Opts.Seed = C.Seed;
  double Value = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec, Opts).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Value = R.Value;
    benchmark::DoNotOptimize(R);
  }
  addRow(C.Label, "SMC-1000", C.PaperApprox, fmt(Value), Secs);
}

} // namespace

BENCHMARK(BM_ReliabilityExact)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReliabilitySmc)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Table 1 rows 6-9 (reliability)")
