//===- bench/bench_overview.cpp - Section 2.2 overview numbers ------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 2.2 in-text result: the probability of
/// congestion of the Figure 2 network is 30378810105265/67706637778944
/// (~0.4487) under the uniform scheduler, computed by exact inference,
/// approximate SMC inference, and the translate-to-PSI pipeline.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "psi/PsiExact.h"
#include "scenarios/Scenarios.h"
#include "translate/Translator.h"

using namespace bayonet;
using namespace bayonet::benchutil;

static void BM_OverviewExact(benchmark::State &State) {
  LoadedNetwork Net = mustLoad(scenarios::paperExample());
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? V->toString() : "?";
    benchmark::DoNotOptimize(R);
  }
  addRow("overview congestion (Fig 2)", "exact",
         "30378810105265/67706637778944", Measured, Secs);
}
BENCHMARK(BM_OverviewExact)->Unit(benchmark::kMillisecond);

static void BM_OverviewTranslated(benchmark::State &State) {
  LoadedNetwork Net = mustLoad(scenarios::paperExample());
  DiagEngine Diags;
  auto Psi = translateToPsi(Net.Spec, Diags);
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    PsiExactResult R = PsiExact(*Psi).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? V->toString() : "?";
    benchmark::DoNotOptimize(R);
  }
  addRow("overview congestion (Fig 2)", "translated",
         "30378810105265/67706637778944", Measured, Secs);
}
BENCHMARK(BM_OverviewTranslated)->Unit(benchmark::kMillisecond);

static void BM_OverviewSmc(benchmark::State &State) {
  LoadedNetwork Net = mustLoad(scenarios::paperExample());
  SampleOptions Opts;
  double Value = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec, Opts).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Value = R.Value;
    benchmark::DoNotOptimize(R);
  }
  addRow("overview congestion (Fig 2)", "SMC-1000", "~0.4487 (0.4570)",
         fmt(Value), Secs);
}
BENCHMARK(BM_OverviewSmc)->Unit(benchmark::kMillisecond);

BAYONET_BENCH_MAIN("Section 2.2 overview")
