//===- bench/alloc_check.cpp - Zero-allocation hot-path assertion ---------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Asserts that the exact engine's weight-merge hot path performs zero
/// heap allocations on the small-rational representation. The merge step
/// that dominates gossip-style runs is `Frontier.second += W` — a
/// SymProb term-wise addition whose concrete weights are small dyadic /
/// triadic rationals — so this tool runs gossip4 once for real weights
/// and then replays that exact operation under the allocation counter
/// from bench/AllocCounter.h.
///
/// Exit 0: zero allocations per merge (or counting disabled — build with
/// -DBAYONET_COUNT_ALLOCS=ON to arm the check). Exit 1: the hot path
/// allocated. tier1.sh runs this from an armed build.
///
//===----------------------------------------------------------------------===//

#include "AllocCounter.h"
#include "api/Bayonet.h"
#include "scenarios/Scenarios.h"

#include <cstdio>

using namespace bayonet;
using namespace bayonet::benchutil;

int main() {
  if (!allocCountingEnabled()) {
    std::printf("alloc_check: counting disabled "
                "(build with -DBAYONET_COUNT_ALLOCS=ON); nothing checked\n");
    return 0;
  }

  DiagEngine Diags;
  auto Net = loadNetwork(scenarios::gossip(4), Diags);
  if (!Net) {
    std::fprintf(stderr, "alloc_check: gossip4 failed to load:\n%s",
                 Diags.toString().c_str());
    return 1;
  }
  ExactOptions Opts;
  Opts.CollectTerminals = true;
  ExactResult R = ExactEngine(Net->Spec, Opts).run();
  if (!R.Status.ok() || R.Terminals.size() < 2) {
    std::fprintf(stderr, "alloc_check: gossip4 run failed\n");
    return 1;
  }

  // The engine's merge is `F[It->second].second += W` on concrete
  // SymProbs; replay it with real terminal weights. Use the weight with
  // the smallest denominator and bound the merge count so the accumulated
  // numerator provably stays in the small-int64 representation — the
  // check targets the small-rational path, not promotion behavior.
  size_t Best = 0;
  for (size_t I = 1; I < R.Terminals.size(); ++I) {
    const SymProb &C = R.Terminals[I].second;
    if (!C.isConcrete() || C.isZero())
      continue;
    if (C.concreteValue() > R.Terminals[Best].second.concreteValue())
      Best = I; // Weights are positive: larger = smaller denominator.
  }
  const SymProb &W = R.Terminals[Best].second;
  const Rational WV = W.concreteValue();
  if (!WV.den().isSmall()) {
    std::fprintf(stderr, "alloc_check: gossip4 weight not small-repr?\n");
    return 1;
  }
  uint64_t Merges = 100000;
  const uint64_t Den = static_cast<uint64_t>(WV.den().getSmall());
  const uint64_t Cap = (uint64_t(1) << 62) / Den;
  if (Cap < Merges + 128)
    Merges = Cap > 256 ? Cap - 128 : 128;

  // A warm-up settles one-time lazy storage so the loop measures the
  // steady state the engine's hot loop actually runs in.
  SymProb Acc = W;
  for (int I = 0; I < 64; ++I)
    Acc += W;

  const uint64_t Before = allocsNow();
  for (uint64_t I = 0; I < Merges; ++I)
    Acc += W;
  const uint64_t Delta = allocsNow() - Before;

  std::printf("alloc_check: %llu allocations across %llu merges "
              "(%.4f per merge)\n",
              static_cast<unsigned long long>(Delta),
              static_cast<unsigned long long>(Merges),
              static_cast<double>(Delta) / Merges);
  if (Delta != 0) {
    std::fprintf(stderr,
                 "alloc_check: FAIL — the small-rational merge path must "
                 "not allocate\n");
    return 1;
  }
  std::printf("alloc_check: OK — zero allocations on the merge hot path\n");
  return 0;
}
