//===- bench/bench_intern.cpp - Interning + SoA batch stepping ------------===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paired-median benchmarks for this repo's two identity-work
/// optimisations:
///  1. BM_InternArena — the exact engine with the hash-consing arena off
///     vs on, run back-to-back inside every iteration so host slow phases
///     hit both sides of a pair equally; the artifact keeps the median
///     pair (BENCH_intern.json).
///  2. BM_SmcBatch — the SoA particle population stepped serially vs with
///     worker lanes, same pairing discipline; the artifact records the
///     median pair and the serial particle throughput
///     (BENCH_smc_batch.json).
///
/// Both report the engine result strings so a pairing bug that changes
/// the posterior is visible right in the table.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

double median(std::vector<double> &V) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

/// One paired measurement: the same workload with a feature off and on,
/// medians taken over the iteration pairs.
struct PairRow {
  std::string Benchmark;
  std::string OffLabel, OnLabel;
  double OffSeconds = 0, OnSeconds = 0;
  std::string Extra; ///< Optional extra JSON fields, pre-rendered.
};

std::vector<PairRow> &pairRows(int Which) {
  static std::vector<PairRow> Intern, Smc;
  return Which == 0 ? Intern : Smc;
}

void addPairRow(int Which, PairRow R) {
  for (PairRow &Old : pairRows(Which))
    if (Old.Benchmark == R.Benchmark) {
      Old = std::move(R);
      return;
    }
  pairRows(Which).push_back(std::move(R));
}

void writePairJson(int Which, const char *Path) {
  const std::vector<PairRow> &Rows = pairRows(Which);
  if (Rows.empty())
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "[\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const PairRow &R = Rows[I];
    double Speedup = R.OnSeconds > 0 ? R.OffSeconds / R.OnSeconds : 0;
    std::fprintf(F,
                 "  {\"benchmark\": \"%s\", \"%s_s\": %.6f, "
                 "\"%s_s\": %.6f, \"speedup\": %.3f%s}%s\n",
                 R.Benchmark.c_str(), R.OffLabel.c_str(), R.OffSeconds,
                 R.OnLabel.c_str(), R.OnSeconds, Speedup, R.Extra.c_str(),
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu rows)\n", Path, Rows.size());
}

double timedExactIntern(const LoadedNetwork &Net, uint64_t InternBytes,
                        std::string &Value) {
  ExactOptions Opts;
  Opts.InternBytes = InternBytes;
  auto T0 = std::chrono::steady_clock::now();
  ExactResult R = ExactEngine(Net.Spec, Opts).run();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  auto V = R.concreteValue();
  Value = V ? fmt(V->toDouble()) : "?";
  benchmark::DoNotOptimize(R);
  return Secs;
}

void BM_InternArena(benchmark::State &State) {
  // Range 0: gossip4 (deep frontier, heavy merging). Range 1: a ring
  // reliability sweep (wide frontier, shallower blocks) so the arena is
  // judged on both block-shape regimes.
  LoadedNetwork Net = mustLoad(State.range(0) == 0
                                   ? scenarios::gossip(4)
                                   : scenarios::ringReliability(20));
  const char *Name =
      State.range(0) == 0 ? "gossip4 exact" : "ring20 exact";
  std::vector<double> Off, On;
  std::string OffVal, OnVal;
  for (auto _ : State) {
    // The pair runs back-to-back inside one iteration: a host slow phase
    // inflates both sides, so the off/on ratio survives the noise the
    // medians cannot remove.
    Off.push_back(timedExactIntern(Net, 0, OffVal));
    On.push_back(timedExactIntern(Net, InternDefaultBytes, OnVal));
  }
  std::string Measured = OnVal;
  if (OnVal != OffVal)
    Measured += " (INTERN MISMATCH: off=" + OffVal + ")";
  double OffMed = median(Off), OnMed = median(On);
  addRow(std::string(Name) + " intern off/on", "exact", "bit-identical",
         Measured, OnMed);
  addPairRow(0, {std::string(Name), "intern_off", "intern_on", OffMed, OnMed,
                 ""});
}

double timedSmc(const LoadedNetwork &Net, unsigned Threads,
                unsigned Particles, std::string &Value) {
  SampleOptions Opts;
  Opts.Threads = Threads;
  Opts.Particles = Particles;
  auto T0 = std::chrono::steady_clock::now();
  SampleResult R = Sampler(Net.Spec, Opts).run();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Value = fmt(R.Value);
  benchmark::DoNotOptimize(R);
  return Secs;
}

void BM_SmcBatch(benchmark::State &State) {
  // Range 0: gossip K=15 (long runs, no observes — pure batch stepping).
  // Range 1: congestion chain (hard observes kill particles, so the dead
  // flags and the resampler's survivor gather dominate).
  const bool Gossip = State.range(0) == 0;
  LoadedNetwork Net = mustLoad(Gossip ? scenarios::gossip(15)
                                      : scenarios::congestionChain(5));
  const char *Name = Gossip ? "gossip15 smc" : "congestion5 smc";
  const unsigned Particles = 1000;
  unsigned Par = std::max(2u, ThreadPool::defaultThreads());
  std::vector<double> Serial, Parallel;
  std::string SerialVal, ParallelVal;
  for (auto _ : State) {
    Serial.push_back(timedSmc(Net, 1, Particles, SerialVal));
    Parallel.push_back(timedSmc(Net, Par, Particles, ParallelVal));
  }
  std::string Measured = SerialVal;
  if (ParallelVal != SerialVal)
    Measured += " (PARALLEL MISMATCH: " + ParallelVal + ")";
  double SerialMed = median(Serial), ParallelMed = median(Parallel);
  addRow(std::string(Name) + " batch 1/" + std::to_string(Par) + "T",
         "SMC-1000", "bit-identical", Measured, SerialMed);
  char Extra[96];
  std::snprintf(Extra, sizeof(Extra),
                ", \"threads\": %u, \"particles_per_s\": %.0f", Par,
                SerialMed > 0 ? Particles / SerialMed : 0);
  addPairRow(1, {std::string(Name), "serial", "parallel", SerialMed,
                 ParallelMed, Extra});
}

} // namespace

BENCHMARK(BM_InternArena)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SmcBatch)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

// BAYONET_BENCH_MAIN plus the two paired-median artifacts this binary
// owns (BENCH_intern.json, BENCH_smc_batch.json).
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printComparison("Interning + SoA batch stepping");
  writeRowsJson(argv[0]);
  writePairJson(0, outPath("BENCH_intern.json").c_str());
  writePairJson(1, outPath("BENCH_smc_batch.json").c_str());
  return 0;
}
