//===- bench/bench_bayes_loadbalancing.cpp - Section 5.5(a) posteriors ----===//
//
// Part of the Bayonet reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 5.5 load-balancing posterior: the probability
/// that S0's ECMP hash is bad (prior 1/10) after the controller observes a
/// sequence of sub-sampled packet copies. The paper reports 0.152 for the
/// sequence (S1, S0, S0, S1, H1) and 0.004 for (H1, S0, S0, H1); we match
/// the first exactly; the second depends on the paper's unstated
/// sub-sampling constant (we use 1/2) and reproduces the downward update.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

using namespace bayonet;
using namespace bayonet::benchutil;

namespace {

struct LbCase {
  const char *Label;
  const char *Sources;
  const char *Paper;
};

const LbCase Cases[] = {
    {"P(bad | S1,S0,S0,S1,H1)", "1001H", "0.152"},
    {"P(bad | H1,S0,S0,H1)", "H00H", "0.004 (<0.1)"},
};

void BM_BayesLoadBalancingExact(benchmark::State &State) {
  const LbCase &C = Cases[State.range(0)];
  LoadedNetwork Net = mustLoad(scenarios::loadBalancing(C.Sources));
  std::string Measured;
  double Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    ExactResult R = ExactEngine(Net.Spec).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    auto V = R.concreteValue();
    Measured = V ? fmt(V->toDouble()) : "?";
    benchmark::DoNotOptimize(R);
  }
  addRow(C.Label, "exact", C.Paper, Measured, Secs);
}

void BM_BayesLoadBalancingSmc(benchmark::State &State) {
  const LbCase &C = Cases[State.range(0)];
  LoadedNetwork Net = mustLoad(scenarios::loadBalancing(C.Sources));
  SampleOptions Opts;
  Opts.Particles = 20000; // The observations are unlikely; use more particles.
  double Value = 0, Secs = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    SampleResult R = Sampler(Net.Spec, Opts).run();
    Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
               .count();
    Value = R.Value;
    benchmark::DoNotOptimize(R);
  }
  addRow(C.Label, "SMC-20000", C.Paper, fmt(Value), Secs);
}

} // namespace

BENCHMARK(BM_BayesLoadBalancingExact)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_BayesLoadBalancingSmc)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BAYONET_BENCH_MAIN("Section 5.5 Bayesian load-balancing posterior")
